//! Superstep (BSP) execution: the layer the paper's algorithms run on.
//!
//! Every algorithm in the paper is a sequence of message batches whose
//! delivery cost is the congestion bound of Lemma 1: delivering a batch
//! takes exactly `max_{directed link} ⌈bits(link)/W⌉` rounds, because the
//! complete topology gives every ordered pair its own dedicated link and
//! batches are enqueued simultaneously. [`Bsp::superstep`] charges exactly
//! that (the fine-grained [`crate::network::Network`] provably needs the
//! same number of rounds — see this module's tests and the crate's
//! proptests), and routes messages into per-machine inboxes.
//!
//! Bandwidth is charged under the configured [`Encoding`]: the historical
//! default charges every message its own [`Envelope::bits`]
//! ([`Encoding::Naive`]); [`Encoding::Varint`] charges each directed link's
//! batch as one encoded buffer ([`crate::message::BatchWire`]). Whatever is
//! charged, the per-message naive sum is always accumulated into
//! [`CommStats::naive_bits`] as the oracle the compression ratio is
//! measured against. The encoding changes *only* the charged sizes — fate,
//! delivery order and message counts are encoding-independent, so a run's
//! trajectory is identical under both.

#![warn(clippy::unwrap_used, clippy::expect_used)]
// ^ window-protocol / worker-path panic hygiene (kcheck KC05): a
// panic here kills a worker mid-window instead of failing the
// attempt cleanly. Tests opt back in below.

use crate::det;
use crate::fault::FaultPlan;
use crate::message::{put_varint, BatchWire, Encoding, Envelope, WireCodec, WireError, WireReader};
use crate::metrics::{CommStats, SuperstepLoad};
use crate::network::NetworkConfig;
use crate::trace::{PhysEvent, TraceEvent, Tracer};
use crate::transport::{CodecBridge, Frame, PhysStats, Transport, TransportKind};
use rustc_hash::FxHashMap;
use std::collections::BTreeMap;

/// Safety bound on recovery rounds per superstep. With `drop < 1` and the
/// per-attempt decision rerolls, any backlog clears in a handful of
/// attempts; hitting this bound means the plan is effectively starving the
/// link and the run panics rather than spinning.
const MAX_RECOVERY_ATTEMPTS: u64 = 4096;

/// Installed fault-injection state: the plan plus the crash events that
/// have fired so far (queryable by the engine's checkpoint recovery).
struct FaultCtx {
    plan: FaultPlan,
    reliable: bool,
    /// Every crash event that fired: `(superstep, machine)`.
    crash_log: Vec<(u64, usize)>,
}

/// The payload-kind histogram of one window's cross-machine messages,
/// ascending by kind name (trace emission only — runs solely inside an
/// enabled tracer's closure).
fn kind_histogram<M: BatchWire>(outgoing: &[Envelope<M>]) -> Vec<(String, u64)> {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for env in outgoing {
        if !env.is_local() {
            *counts.entry(env.payload.kind_name()).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

/// One window's per-directed-link charged bits, ascending by link (trace
/// emission only).
fn link_list(link_bits: &FxHashMap<(u32, u32), u64>) -> Vec<(u32, u32, u64)> {
    det::sorted_entries(link_bits)
        .into_iter()
        .map(|((src, dst), &bits)| (src, dst, bits))
        .collect()
}

/// The superstep runner.
///
/// ```
/// use kmachine::bsp::Bsp;
/// use kmachine::bandwidth::Bandwidth;
/// use kmachine::message::Envelope;
/// use kmachine::network::NetworkConfig;
///
/// let mut bsp: Bsp<u64> = Bsp::new(NetworkConfig::new(3, Bandwidth::Bits(64), 64));
/// // Two 64-bit messages on the same link: 2 rounds; one elsewhere: parallel.
/// bsp.superstep(vec![
///     Envelope::new(0, 1, 7u64),
///     Envelope::new(0, 1, 8u64),
///     Envelope::new(2, 0, 9u64),
/// ]);
/// assert_eq!(bsp.stats().rounds, 2);
/// assert_eq!(bsp.take_inbox(1).len(), 2);
/// ```
pub struct Bsp<M> {
    cfg: NetworkConfig,
    w: u64,
    stats: CommStats,
    inboxes: Vec<Vec<Envelope<M>>>,
    /// Optional machine bipartition: `cut[i]` is machine `i`'s side; bits
    /// crossing sides accumulate into `stats.cut_bits` (§4 harness).
    cut: Option<Vec<bool>>,
    /// Installed fault plan, if any (see [`Bsp::install_faults`]).
    faults: Option<FaultCtx>,
    /// Installed byte transport, if any (see [`Bsp::set_transport`]). With
    /// a `Proc` transport every superstep window physically crosses the
    /// worker mesh before it is accounted.
    bridge: Option<CodecBridge<M>>,
    /// Structured trace stream (off by default; see [`Bsp::set_tracer`]).
    trace: Tracer,
}

impl<M> Bsp<M> {
    /// Creates a runner over `k` machines.
    pub fn new(cfg: NetworkConfig) -> Self {
        assert!(cfg.k >= 2, "the model requires k >= 2");
        Bsp {
            w: cfg.link_bits(),
            stats: CommStats::new(cfg.k),
            inboxes: (0..cfg.k).map(|_| Vec::new()).collect(),
            cut: None,
            faults: None,
            bridge: None,
            trace: Tracer::off(),
            cfg,
        }
    }

    /// Installs a trace stream (DESIGN.md §3.14): every subsequent
    /// superstep emits a [`TraceEvent::Superstep`] record, fault injection
    /// emits [`TraceEvent::Faults`] / [`TraceEvent::Retransmit`], and a
    /// process transport reports window lifecycle on the physical channel.
    /// Emission never perturbs accounting or delivery — a traced run is
    /// bit-identical to an untraced one.
    pub fn set_tracer(&mut self, trace: Tracer) {
        self.trace = trace;
    }

    /// Installs a byte transport (DESIGN.md §3.12). With a
    /// [`TransportKind::Proc`] transport, every subsequent superstep's
    /// cross-machine messages are encoded with [`WireCodec`], shipped
    /// through the worker mesh as per-link frames, decoded from the bytes
    /// that physically arrived, and only then accounted — so `CommStats`
    /// on the process backend is reconstructed from real framed/acked
    /// traffic. A [`TransportKind::Sim`] transport (or none) keeps the
    /// historical in-process path byte-for-byte: the simulator is the
    /// accounting oracle and is never perturbed.
    ///
    /// Worker restarts observed by the transport (a machine process died
    /// and was respawned, the window replayed) are folded into
    /// [`CommStats::machine_crashes`] — the physical realization of the
    /// PR 5 crash-stop-with-immediate-restart semantics.
    pub fn set_transport(&mut self, transport: Box<dyn Transport>)
    where
        M: WireCodec,
    {
        self.bridge = Some(CodecBridge::new(transport));
    }

    /// The installed transport's physical-layer counters, if any.
    pub fn phys_stats(&self) -> Option<&PhysStats> {
        self.bridge.as_ref().map(|b| b.transport.phys())
    }

    /// Whether supersteps are physically routed through a process mesh.
    fn transported(&self) -> bool {
        self.bridge
            .as_ref()
            .is_some_and(|b| b.transport.kind() == TransportKind::Proc)
    }

    /// Ships one delivery window through the installed transport: encodes
    /// the non-local envelopes per directed link (varint window positions,
    /// bits, and payload bytes — the PR 6 encoding as actual wire format),
    /// exchanges the frames through the worker mesh, and decodes what
    /// physically arrived. Local envelopes never touch the wire. Returns
    /// `(window position, envelope)` pairs in unspecified order; the caller
    /// reassembles by position.
    fn transit(&mut self, tagged: Vec<(u64, Envelope<M>)>) -> Vec<(u64, Envelope<M>)> {
        let Some(bridge) = self.bridge.as_mut() else {
            return tagged;
        };
        type LinkBuckets<M> = FxHashMap<(u32, u32), Vec<(u64, Envelope<M>)>>;
        let total = tagged.len();
        let mut out = Vec::with_capacity(total);
        let mut by_link: LinkBuckets<M> = FxHashMap::default();
        for (pos, env) in tagged {
            if env.is_local() {
                out.push((pos, env));
            } else {
                by_link
                    .entry((env.src as u32, env.dst as u32))
                    .or_default()
                    .push((pos, env));
            }
        }
        let mut frames = Vec::with_capacity(by_link.len());
        for ((src, dst), envs) in det::sorted_entries(&by_link) {
            let mut payload = Vec::new();
            put_varint(&mut payload, envs.len() as u64);
            for (pos, env) in envs {
                put_varint(&mut payload, *pos);
                put_varint(&mut payload, env.bits);
                (bridge.enc)(&env.payload, &mut payload);
            }
            frames.push(Frame::new(src, dst, payload));
        }
        // Physical-channel tracing: snapshot the transport counters and the
        // wall clock around the exchange. The wall-clock value feeds ONLY
        // the phys channel (never logical events or accounting), so the
        // logical stream and the run stay deterministic.
        let phys_mark = self
            .trace
            .is_on()
            .then(|| (bridge.transport.phys().clone(), std::time::Instant::now()));
        for f in bridge.transport.exchange(frames) {
            let mut r = WireReader::new(&f.payload);
            let n = r
                .varint("batch.count")
                .unwrap_or_else(|e| panic!("transport frame {}→{}: {e}", f.src, f.dst));
            for _ in 0..n {
                let decoded = (|| -> Result<(u64, Envelope<M>), WireError> {
                    let pos = r.varint("batch.pos")?;
                    let bits = r.varint("batch.bits")?;
                    let payload = (bridge.dec)(&mut r)?;
                    Ok((
                        pos,
                        Envelope::with_bits(f.src as usize, f.dst as usize, payload, bits),
                    ))
                })()
                .unwrap_or_else(|e| panic!("transport frame {}→{}: {e}", f.src, f.dst));
                out.push(decoded);
            }
            assert!(
                r.is_empty(),
                "transport frame {}→{}: {} trailing bytes",
                f.src,
                f.dst,
                f.payload.len() - r.offset()
            );
        }
        assert_eq!(
            out.len(),
            total,
            "transport window lost or duplicated envelopes ({} of {total} accounted)",
            out.len()
        );
        if let Some((before, started)) = phys_mark {
            let after = bridge.transport.phys().clone();
            let micros = started.elapsed().as_micros() as u64;
            let superstep = self.stats.supersteps;
            self.trace.emit_phys(|| PhysEvent::Window {
                superstep,
                windows: after.windows - before.windows,
                attempts: after.attempts - before.attempts,
                frames_sent: after.frames_sent - before.frames_sent,
                payload_bytes: after.payload_bytes - before.payload_bytes,
                frames_delivered: after.frames_delivered - before.frames_delivered,
                acks: after.acks - before.acks,
                worker_restarts: after.worker_restarts - before.worker_restarts,
                micros,
            });
        }
        let restarts = bridge.transport.phys().worker_restarts;
        let new = restarts - bridge.restarts_seen;
        bridge.restarts_seen = restarts;
        self.stats.machine_crashes += new;
        out
    }

    /// Installs a deterministic [`FaultPlan`]. With `reliable = true`
    /// (the production setting) every subsequent [`Bsp::superstep`] runs a
    /// per-superstep ack/retransmit protocol: lost messages are re-sent in
    /// *recovery rounds* until everything arrives, duplicates are dropped
    /// by sequence number, and each inbox is reassembled in canonical
    /// sequence order — the application observes exactly the fault-free
    /// inboxes while the stats record `faults_injected`,
    /// `retransmit_bits` and `recovery_rounds`. With `reliable = false`
    /// faults take effect verbatim (drops lose messages, duplicates arrive
    /// twice, reordered/delayed ones drift to the back of the inbox) — the
    /// ablation showing the recovery protocol is load-bearing.
    ///
    /// Panics on an invalid plan (see [`FaultPlan::validate`]) or a crash
    /// event naming a machine `≥ k`.
    pub fn install_faults(&mut self, plan: FaultPlan, reliable: bool) {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        for c in &plan.crashes {
            assert!(
                c.machine < self.cfg.k,
                "crash event machine {} out of range (k = {})",
                c.machine,
                self.cfg.k
            );
        }
        self.faults = Some(FaultCtx {
            plan,
            reliable,
            crash_log: Vec::new(),
        });
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|c| &c.plan)
    }

    /// How many crash events have fired so far (a monotone cursor: callers
    /// snapshot it, run supersteps, and pass the snapshot to
    /// [`Bsp::crashed_since`] to learn what crashed in between).
    pub fn crash_count(&self) -> usize {
        self.faults.as_ref().map_or(0, |c| c.crash_log.len())
    }

    /// The machines that crashed since the `mark`-th crash event,
    /// deduplicated and ascending.
    pub fn crashed_since(&self, mark: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .faults
            .as_ref()
            .map_or(&[][..], |c| &c.crash_log[mark.min(c.crash_log.len())..])
            .iter()
            .map(|&(_, m)| m)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Attributes already-charged rounds and bits to recovery (the engine
    /// uses this for crash rollback: the aborted phase attempt and the
    /// checkpoint-restore barrier are real rounds/bits in `stats.rounds` /
    /// `stats.total_bits`; this marks them as recovery overhead without
    /// double-charging — callers pass only the portion the superstep layer
    /// has not already attributed).
    pub fn attribute_recovery(&mut self, rounds: u64, bits: u64) {
        self.stats.recovery_rounds += rounds;
        self.stats.retransmit_bits += bits;
    }

    /// Tracks bits crossing a machine bipartition (`side[i]` = machine `i`'s
    /// side). Used by the §4 Alice/Bob communication-complexity harness.
    pub fn set_cut(&mut self, side: Vec<bool>) {
        assert_eq!(side.len(), self.cfg.k);
        self.cut = Some(side);
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// The per-link budget `W` in bits per round.
    pub fn link_bits(&self) -> u64 {
        self.w
    }

    /// Executes one superstep: routes `outgoing` (any order), charges
    /// `max_link ⌈bits/W⌉` rounds, and appends to the receivers' inboxes.
    ///
    /// Self-addressed messages are delivered for free (local computation
    /// costs nothing in the model). A superstep with no cross-machine
    /// message charges zero rounds: it is not a communication step.
    ///
    /// With a fault plan installed ([`Bsp::install_faults`]) the superstep
    /// additionally injects the plan's faults and — in reliable mode —
    /// masks them with the ack/retransmit protocol, charging the recovery
    /// cost on top of the base superstep cost.
    pub fn superstep(&mut self, outgoing: Vec<Envelope<M>>)
    where
        M: Clone + BatchWire,
    {
        let outgoing = self.through_transport(outgoing);
        match self.faults.take() {
            None => self.superstep_exact(outgoing),
            Some(mut ctx) => {
                self.superstep_faulty(outgoing, &mut ctx);
                self.faults = Some(ctx);
            }
        }
    }

    /// Routes one superstep window through an installed process transport:
    /// the batch goes out as real bytes and comes back decoded, in the
    /// original window order (positions are carried on the wire and the
    /// reassembly is verified to be a permutation-free round trip). Without
    /// a process transport this is the identity — the simulator path stays
    /// byte-for-byte unchanged.
    fn through_transport(&mut self, outgoing: Vec<Envelope<M>>) -> Vec<Envelope<M>> {
        if !self.transported() {
            return outgoing;
        }
        let tagged: Vec<(u64, Envelope<M>)> = outgoing
            .into_iter()
            .enumerate()
            .map(|(i, e)| (i as u64, e))
            .collect();
        let mut back = self.transit(tagged);
        back.sort_unstable_by_key(|&(pos, _)| pos);
        for (i, &(pos, _)) in back.iter().enumerate() {
            assert_eq!(
                pos, i as u64,
                "transport window returned a bad position set"
            );
        }
        back.into_iter().map(|(_, e)| e).collect()
    }

    /// Re-ships a retransmission wave through the process transport (the
    /// sequence set must survive the round trip exactly; fate decisions are
    /// keyed by sequence number, so the recovery trajectory is identical to
    /// the simulator's). Identity without a process transport.
    fn retransit(&mut self, lost: Vec<(u64, Envelope<M>)>) -> Vec<(u64, Envelope<M>)> {
        if !self.transported() || lost.is_empty() {
            return lost;
        }
        let mut expect: Vec<u64> = lost.iter().map(|&(seq, _)| seq).collect();
        expect.sort_unstable();
        let mut back = self.transit(lost);
        back.sort_unstable_by_key(|&(seq, _)| seq);
        let got: Vec<u64> = back.iter().map(|&(seq, _)| seq).collect();
        assert_eq!(got, expect, "retransmission window lost envelopes");
        back
    }

    /// Groups the non-local messages of one batch by directed link,
    /// validating machine ids. Each group keeps the messages' indices into
    /// `outgoing`, in arrival order.
    fn link_groups(&self, outgoing: &[Envelope<M>]) -> FxHashMap<(u32, u32), Vec<usize>> {
        let mut groups: FxHashMap<(u32, u32), Vec<usize>> = FxHashMap::default();
        for (i, env) in outgoing.iter().enumerate() {
            assert!(
                env.src < self.cfg.k && env.dst < self.cfg.k,
                "bad machine id"
            );
            if !env.is_local() {
                groups
                    .entry((env.src as u32, env.dst as u32))
                    .or_default()
                    .push(i);
            }
        }
        groups
    }

    /// The charged size of one directed link's batch under the configured
    /// encoding. Never zero for a non-empty batch (a message costs ≥ 1 bit).
    fn encoded_link_bits(&self, outgoing: &[Envelope<M>], idxs: &[usize]) -> u64
    where
        M: BatchWire,
    {
        match self.cfg.encoding {
            Encoding::Naive => idxs.iter().map(|&i| outgoing[i].bits.max(1)).sum(),
            Encoding::Varint => {
                let refs: Vec<&Envelope<M>> = idxs.iter().map(|&i| &outgoing[i]).collect();
                M::batch_wire_bits(&refs).max(1)
            }
        }
    }

    /// Charges one batch's base window: per-link encoded bits into
    /// `link_bits` / machine loads / sent / recv / cut counters. Returns
    /// `(total charged bits, naive oracle bits, non-local message count)`.
    fn charge_base_window(
        &mut self,
        outgoing: &[Envelope<M>],
        groups: &FxHashMap<(u32, u32), Vec<usize>>,
        link_bits: &mut FxHashMap<(u32, u32), u64>,
        machine_out: &mut [u64],
        machine_in: &mut [u64],
    ) -> (u64, u64, u64)
    where
        M: BatchWire,
    {
        let mut total = 0u64;
        let mut naive = 0u64;
        let mut messages = 0u64;
        for ((src, dst), idxs) in det::sorted_entries(groups) {
            let bits = self.encoded_link_bits(outgoing, idxs);
            link_bits.insert((src, dst), bits);
            machine_out[src as usize] += bits;
            machine_in[dst as usize] += bits;
            total += bits;
            naive += idxs.iter().map(|&i| outgoing[i].bits.max(1)).sum::<u64>();
            messages += idxs.len() as u64;
            self.stats.sent_bits[src as usize] += bits;
            self.stats.recv_bits[dst as usize] += bits;
            if let Some(cut) = &self.cut {
                if cut[src as usize] != cut[dst as usize] {
                    self.stats.cut_bits += bits;
                }
            }
        }
        (total, naive, messages)
    }

    /// The fault-free superstep (the only path when no plan is installed;
    /// bit-for-bit the historical behaviour under [`Encoding::Naive`]: the
    /// per-link group sum of `bits.max(1)` is exactly the old streaming
    /// accumulation).
    fn superstep_exact(&mut self, outgoing: Vec<Envelope<M>>)
    where
        M: BatchWire,
    {
        let groups = self.link_groups(&outgoing);
        let mut link_bits: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        let mut machine_out = vec![0u64; self.cfg.k];
        let mut machine_in = vec![0u64; self.cfg.k];
        let (total, naive, messages) = self.charge_base_window(
            &outgoing,
            &groups,
            &mut link_bits,
            &mut machine_out,
            &mut machine_in,
        );
        let max_link = det::max_value(&link_bits).unwrap_or(0);
        let rounds = self.batch_rounds(max_link, &machine_out, &machine_in);
        self.stats.rounds += rounds;
        self.stats.supersteps += 1;
        self.stats.messages += messages;
        self.stats.total_bits += total;
        self.stats.naive_bits += naive;
        self.stats.max_link_bits = self.stats.max_link_bits.max(max_link);
        self.stats.superstep_loads.push(SuperstepLoad {
            max_link_bits: max_link,
            total_bits: total,
            messages,
            rounds,
        });
        let index = self.stats.supersteps - 1;
        self.trace.emit(|| TraceEvent::Superstep {
            index,
            rounds,
            bits: total,
            messages,
            max_link_bits: max_link,
            links: link_list(&link_bits),
            kinds: kind_histogram(&outgoing),
        });
        // Delivery preserves the batch's arrival order (locals interleaved
        // exactly where they were sent), whatever the charged encoding.
        for env in outgoing {
            self.inboxes[env.dst].push(env);
        }
    }

    /// Rounds one delivered batch costs under the configured §1.1
    /// restriction.
    fn batch_rounds(&self, max_link: u64, machine_out: &[u64], machine_in: &[u64]) -> u64 {
        match self.cfg.cost_model {
            crate::bandwidth::CostModel::PerLink => max_link.div_ceil(self.w),
            crate::bandwidth::CostModel::PerMachine => {
                // §1.1 alternate view: each machine moves at most
                // W·(k−1) bits per round, send and receive separately.
                let budget = self.w * (self.cfg.k as u64 - 1);
                let max_machine = machine_out
                    .iter()
                    .chain(machine_in.iter())
                    .copied()
                    .max()
                    .unwrap_or(0);
                max_machine.div_ceil(budget)
            }
        }
    }

    /// The fault-injected superstep (DESIGN.md §3.10). The base attempt is
    /// accounted exactly like a fault-free superstep (bits are spent even
    /// on messages that end up dropped); duplicate transmissions add their
    /// bits to the same delivery window. In reliable mode, recovery rounds
    /// then retransmit every lost message (each retransmission rerolls the
    /// drop decision) and land the delayed ones, until nothing is
    /// outstanding; the inbox is finally reassembled in sequence order, so
    /// it is identical to the fault-free inbox.
    fn superstep_faulty(&mut self, outgoing: Vec<Envelope<M>>, ctx: &mut FaultCtx)
    where
        M: Clone + BatchWire,
    {
        let s = self.stats.supersteps;
        let crashed = ctx.plan.crashes_at(s);
        for &m in &crashed {
            ctx.crash_log.push((s, m));
            self.stats.machine_crashes += 1;
            self.stats.faults_injected += 1;
        }
        // Base-window charge: the full batch is charged exactly like a
        // fault-free superstep under the configured encoding (bits are
        // spent even on messages that end up dropped), so the separability
        // identities hold per encoding.
        let groups = self.link_groups(&outgoing);
        let mut link_bits: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        let mut machine_out = vec![0u64; self.cfg.k];
        let mut machine_in = vec![0u64; self.cfg.k];
        let (mut total, naive, messages) = self.charge_base_window(
            &outgoing,
            &groups,
            &mut link_bits,
            &mut machine_out,
            &mut machine_in,
        );
        self.stats.naive_bits += naive;
        // Trace-only snapshot: the kind histogram must be taken before the
        // fate loop consumes the batch. Skipped entirely when tracing is
        // off.
        let kinds = self.trace.is_on().then(|| kind_histogram(&outgoing));
        let (mut dropped, mut duplicated, mut reordered, mut delayed) = (0u64, 0u64, 0u64, 0u64);
        // Duplicate transmissions share the delivery window but their
        // load is tracked separately so the rounds they add can be
        // attributed to recovery overhead. A spurious copy is a lone
        // re-send, charged naively — it is not part of any encoded batch.
        let mut dup_link_bits: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        let mut dup_out = vec![0u64; self.cfg.k];
        let mut dup_in = vec![0u64; self.cfg.k];
        // Message fates of the first delivery attempt. `arrived` carries
        // `(seq, scrambled, env)`; `seq` is the message's index in
        // `outgoing`, which is exactly the order a fault-free superstep
        // would deliver in. Fate decisions are keyed by `seq` alone, so the
        // trajectory is identical under every encoding.
        let mut arrived: Vec<(u64, bool, Envelope<M>)> = Vec::new();
        let mut lost: Vec<(u64, Envelope<M>)> = Vec::new();
        let mut in_flight: Vec<(u64, Envelope<M>)> = Vec::new();
        for (seq, env) in outgoing.into_iter().enumerate() {
            let seq = seq as u64;
            if env.is_local() {
                // Local messages never touch a link: no faults apply.
                arrived.push((seq, false, env));
                continue;
            }
            let bits = env.bits.max(1);
            let crossing = self
                .cut
                .as_ref()
                .is_some_and(|cut| cut[env.src] != cut[env.dst]);
            if crashed.binary_search(&env.src).is_ok() || crashed.binary_search(&env.dst).is_ok() {
                // The crash event itself is the counted fault; every
                // message it loses still needs retransmitting.
                lost.push((seq, env));
                continue;
            }
            if ctx.plan.drops(s, 0, seq) {
                self.stats.faults_injected += 1;
                dropped += 1;
                lost.push((seq, env));
                continue;
            }
            if ctx.plan.delays(s, seq) {
                self.stats.faults_injected += 1;
                delayed += 1;
                in_flight.push((seq, env));
                continue;
            }
            if ctx.plan.duplicates(s, seq) {
                self.stats.faults_injected += 1;
                duplicated += 1;
                // The spurious copy spends real bits in the same window.
                *dup_link_bits
                    .entry((env.src as u32, env.dst as u32))
                    .or_insert(0) += bits;
                dup_out[env.src] += bits;
                dup_in[env.dst] += bits;
                total += bits;
                self.stats.sent_bits[env.src] += bits;
                self.stats.recv_bits[env.dst] += bits;
                self.stats.retransmit_bits += bits;
                self.stats.naive_bits += bits;
                if crossing {
                    self.stats.cut_bits += bits;
                }
                if !ctx.reliable {
                    // Best effort has no sequence dedup: both copies land.
                    arrived.push((seq, false, env.clone()));
                }
            }
            let scrambled = ctx.plan.reorders(s, seq);
            if scrambled {
                self.stats.faults_injected += 1;
                reordered += 1;
            }
            arrived.push((seq, scrambled, env));
        }
        // The window's rounds cover base + duplicate traffic together; the
        // rounds the duplicates add beyond the clean batch are recovery
        // overhead, so the identity `rounds − recovery_rounds = fault-free
        // rounds` holds for every plan.
        let clean_max = det::max_value(&link_bits).unwrap_or(0);
        let clean_rounds = self.batch_rounds(clean_max, &machine_out, &machine_in);
        for (link, bits) in det::into_sorted_entries(dup_link_bits) {
            *link_bits.entry(link).or_insert(0) += bits;
        }
        for i in 0..self.cfg.k {
            machine_out[i] += dup_out[i];
            machine_in[i] += dup_in[i];
        }
        let max_link = det::max_value(&link_bits).unwrap_or(0);
        let rounds = self.batch_rounds(max_link, &machine_out, &machine_in);
        self.stats.rounds += rounds;
        self.stats.recovery_rounds += rounds - clean_rounds;
        self.stats.supersteps += 1;
        self.stats.messages += messages;
        self.stats.total_bits += total;
        self.stats.max_link_bits = self.stats.max_link_bits.max(max_link);
        self.stats.superstep_loads.push(SuperstepLoad {
            max_link_bits: max_link,
            total_bits: total,
            messages,
            rounds,
        });
        let index = self.stats.supersteps - 1;
        self.trace.emit(|| TraceEvent::Superstep {
            index,
            rounds,
            bits: total,
            messages,
            max_link_bits: max_link,
            links: link_list(&link_bits),
            kinds: kinds.unwrap_or_default(),
        });
        let n_crashed = crashed.len() as u64;
        if dropped + duplicated + reordered + delayed + n_crashed > 0 {
            self.trace.emit(|| TraceEvent::Faults {
                superstep: s,
                dropped,
                duplicated,
                reordered,
                delayed,
                crashed: n_crashed,
            });
        }
        if ctx.reliable {
            // Ack/retransmit: each recovery round costs one round for the
            // ack/nack exchange plus the retransmission batch's own rounds.
            // Crashed machines are back up from the first recovery round
            // (crash-stop with immediate restart), so their traffic clears
            // here too. Senders retransmit from their durable send log.
            let mut attempt = 1u64;
            while !lost.is_empty() || !in_flight.is_empty() {
                assert!(
                    attempt <= MAX_RECOVERY_ATTEMPTS,
                    "fault plan starves superstep {s}: {} messages still \
                     outstanding after {} recovery rounds",
                    lost.len() + in_flight.len(),
                    attempt - 1
                );
                arrived.extend(in_flight.drain(..).map(|(q, e)| (q, false, e)));
                // On a process transport the retransmission wave is real
                // traffic: the lost messages cross the worker mesh again as
                // their own delivery window before being re-accounted.
                let resent = self.retransit(std::mem::take(&mut lost));
                let mut rlink: FxHashMap<(u32, u32), u64> = FxHashMap::default();
                let mut rout = vec![0u64; self.cfg.k];
                let mut rin = vec![0u64; self.cfg.k];
                let mut still = Vec::new();
                let wave_msgs = resent.len() as u64;
                let mut wave_bits = 0u64;
                for (seq, env) in resent {
                    let bits = env.bits.max(1);
                    wave_bits += bits;
                    *rlink.entry((env.src as u32, env.dst as u32)).or_insert(0) += bits;
                    rout[env.src] += bits;
                    rin[env.dst] += bits;
                    self.stats.sent_bits[env.src] += bits;
                    self.stats.recv_bits[env.dst] += bits;
                    self.stats.total_bits += bits;
                    self.stats.retransmit_bits += bits;
                    self.stats.naive_bits += bits;
                    if let Some(cut) = &self.cut {
                        if cut[env.src] != cut[env.dst] {
                            self.stats.cut_bits += bits;
                        }
                    }
                    if ctx.plan.drops(s, attempt, seq) {
                        self.stats.faults_injected += 1;
                        still.push((seq, env));
                    } else {
                        arrived.push((seq, false, env));
                    }
                }
                lost = still;
                let rmax = det::max_value(&rlink).unwrap_or(0);
                let extra = 1 + self.batch_rounds(rmax, &rout, &rin);
                self.stats.rounds += extra;
                self.stats.recovery_rounds += extra;
                self.trace.emit(|| TraceEvent::Retransmit {
                    superstep: s,
                    attempt,
                    messages: wave_msgs,
                    bits: wave_bits,
                    rounds: extra,
                });
                attempt += 1;
            }
            // Canonical reassembly: sequence order *is* the fault-free
            // inbox order, and phantom duplicates were never materialized
            // — so the application observes exactly the fault-free run.
            arrived.sort_unstable_by_key(|&(seq, _, _)| seq);
        } else {
            // Best effort: losses are final, delayed messages arrive late,
            // reordered (and delayed) ones drift behind everything else.
            // The stable sort keeps duplicate copies adjacent.
            arrived.extend(in_flight.drain(..).map(|(q, e)| (q, true, e)));
            arrived.sort_by_key(|&(seq, scrambled, _)| (scrambled, seq));
        }
        for (_, _, env) in arrived {
            self.inboxes[env.dst].push(env);
        }
    }

    /// Takes machine `i`'s inbox (clearing it).
    pub fn take_inbox(&mut self, i: usize) -> Vec<Envelope<M>> {
        std::mem::take(&mut self.inboxes[i])
    }

    /// Takes all inboxes at once (indexed by machine).
    pub fn take_all_inboxes(&mut self) -> Vec<Vec<Envelope<M>>> {
        let k = self.cfg.k;
        (0..k)
            .map(|i| std::mem::take(&mut self.inboxes[i]))
            .collect()
    }

    /// Charges extra rounds for a modeled sub-protocol that is not executed
    /// message-by-message (e.g. the §2.2 shared-randomness distribution).
    /// `bits_from_one_machine` is attributed to machine `src`'s send load.
    pub fn charge_modeled_rounds(&mut self, rounds: u64, bits_from_one_machine: u64, src: usize) {
        self.stats.rounds += rounds;
        self.stats.total_bits += bits_from_one_machine;
        self.stats.naive_bits += bits_from_one_machine;
        if src < self.stats.sent_bits.len() {
            self.stats.sent_bits[src] += bits_from_one_machine;
        }
    }

    /// Charges one barrier round (e.g. a termination-detection exchange that
    /// moves O(k) tiny messages; the model still spends a round on it).
    pub fn charge_barrier(&mut self) {
        self.stats.rounds += 1;
    }

    /// Communication statistics so far.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Consumes the runner, returning its statistics.
    pub fn into_stats(self) -> CommStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::bandwidth::Bandwidth;
    use crate::message::WireSize;
    use crate::network::Network;

    #[derive(Clone, Debug)]
    struct B(u64);
    impl WireSize for B {
        fn wire_bits(&self) -> u64 {
            self.0
        }
    }
    impl BatchWire for B {}

    fn cfg(k: usize, w: u64) -> NetworkConfig {
        NetworkConfig::new(k, Bandwidth::Bits(w), 64)
    }

    #[test]
    fn superstep_charges_max_link_rounds() {
        let mut bsp: Bsp<B> = Bsp::new(cfg(4, 10));
        bsp.superstep(vec![
            Envelope::new(0, 1, B(25)), // link (0,1): 25 bits -> 3 rounds
            Envelope::new(2, 3, B(10)), // 1 round, in parallel
            Envelope::new(3, 2, B(9)),
        ]);
        assert_eq!(bsp.stats().rounds, 3);
        assert_eq!(bsp.take_inbox(1).len(), 1);
        assert_eq!(bsp.take_inbox(2).len(), 1);
    }

    #[test]
    fn local_messages_are_free() {
        let mut bsp: Bsp<B> = Bsp::new(cfg(3, 10));
        bsp.superstep(vec![Envelope::new(1, 1, B(1_000_000))]);
        assert_eq!(bsp.stats().rounds, 0);
        assert_eq!(bsp.stats().total_bits, 0);
        assert_eq!(bsp.take_inbox(1).len(), 1);
    }

    #[test]
    fn empty_superstep_charges_nothing() {
        let mut bsp: Bsp<B> = Bsp::new(cfg(2, 10));
        bsp.superstep(vec![]);
        assert_eq!(bsp.stats().rounds, 0);
        assert_eq!(bsp.stats().supersteps, 1);
    }

    #[test]
    fn bsp_rounds_equal_fine_grained_network_rounds() {
        // The analytic charge must equal the fine-grained drain time for
        // the same batch: randomized cross-check.
        use krand::prf::Prf;
        let prf = Prf::new(77);
        for trial in 0..50u64 {
            let k = 2 + (prf.eval(0, trial) % 6) as usize;
            let w = 1 + prf.eval(1, trial) % 40;
            let msgs: Vec<(usize, usize, u64)> = (0..(prf.eval(2, trial) % 60))
                .map(|i| {
                    let s = prf.eval_mod(3, trial * 1000 + i, k as u64) as usize;
                    let mut d = prf.eval_mod(4, trial * 1000 + i, k as u64) as usize;
                    if d == s {
                        d = (d + 1) % k;
                    }
                    (s, d, 1 + prf.eval(5, trial * 1000 + i) % 100)
                })
                .collect();
            let mut bsp: Bsp<B> = Bsp::new(cfg(k, w));
            bsp.superstep(
                msgs.iter()
                    .map(|&(s, d, b)| Envelope::new(s, d, B(b)))
                    .collect(),
            );
            let mut net: Network<B> = Network::new(cfg(k, w));
            for &(s, d, b) in &msgs {
                net.send(Envelope::new(s, d, B(b)));
            }
            net.drain();
            assert_eq!(
                bsp.stats().rounds,
                net.round(),
                "trial {trial}: k={k} w={w}"
            );
        }
    }

    #[test]
    fn per_machine_cost_model_sandwich() {
        // For any batch: perMachine rounds ≤ perLink rounds ≤ (k−1)·perMachine
        // (the §1.1 equivalence up to a k−1 factor).
        use crate::bandwidth::CostModel;
        use krand::prf::Prf;
        let prf = Prf::new(31);
        for trial in 0..40u64 {
            let k = 3 + (prf.eval(0, trial) % 5) as usize;
            let w = 1 + prf.eval(1, trial) % 30;
            let msgs: Vec<(usize, usize, u64)> = (0..(prf.eval(2, trial) % 50))
                .map(|i| {
                    let s = prf.eval_mod(3, trial * 100 + i, k as u64) as usize;
                    let mut d = prf.eval_mod(4, trial * 100 + i, k as u64) as usize;
                    if d == s {
                        d = (d + 1) % k;
                    }
                    (s, d, 1 + prf.eval(5, trial * 100 + i) % 80)
                })
                .collect();
            let run = |model: CostModel| {
                let mut c = cfg(k, w);
                c.cost_model = model;
                let mut bsp: Bsp<B> = Bsp::new(c);
                bsp.superstep(
                    msgs.iter()
                        .map(|&(s, d, b)| Envelope::new(s, d, B(b)))
                        .collect(),
                );
                bsp.stats().rounds
            };
            let per_link = run(CostModel::PerLink);
            let per_machine = run(CostModel::PerMachine);
            assert!(per_machine <= per_link, "trial {trial}");
            assert!(
                per_link <= per_machine * (k as u64 - 1) + 1,
                "trial {trial}: {per_link} vs {per_machine} (k={k})"
            );
        }
    }

    #[test]
    fn per_machine_counts_send_and_receive_separately() {
        use crate::bandwidth::CostModel;
        // One machine receives from everyone: in-load drives the rounds.
        let k = 5;
        let mut c = cfg(k, 10);
        c.cost_model = CostModel::PerMachine;
        let mut bsp: Bsp<B> = Bsp::new(c);
        // Machine 0 receives 4 × 40 bits = 160; budget = 10·4 = 40/round.
        bsp.superstep((1..k).map(|s| Envelope::new(s, 0, B(40))).collect());
        assert_eq!(bsp.stats().rounds, 4);
    }

    #[test]
    fn cut_bits_track_the_bipartition() {
        let mut bsp: Bsp<B> = Bsp::new(cfg(4, 10));
        bsp.set_cut(vec![true, true, false, false]);
        bsp.superstep(vec![
            Envelope::new(0, 1, B(5)),  // same side: not counted
            Envelope::new(1, 2, B(7)),  // crossing
            Envelope::new(3, 0, B(11)), // crossing
            Envelope::new(2, 3, B(13)), // same side
        ]);
        assert_eq!(bsp.stats().cut_bits, 18);
        assert_eq!(bsp.stats().total_bits, 36);
    }

    #[test]
    fn modeled_charges_accumulate() {
        let mut bsp: Bsp<B> = Bsp::new(cfg(2, 10));
        bsp.charge_modeled_rounds(7, 140, 0);
        bsp.charge_barrier();
        assert_eq!(bsp.stats().rounds, 8);
        assert_eq!(bsp.stats().total_bits, 140);
        assert_eq!(bsp.stats().sent_bits[0], 140);
    }
}

#[cfg(test)]
mod fault_tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::bandwidth::Bandwidth;

    use crate::fault::FaultPlan;
    use crate::message::WireSize;

    #[derive(Clone, Debug, PartialEq)]
    struct Tagged(u64); // payload id; fixed 16-bit wire size
    impl WireSize for Tagged {
        fn wire_bits(&self) -> u64 {
            16
        }
    }
    impl BatchWire for Tagged {}

    fn cfg(k: usize, w: u64) -> NetworkConfig {
        NetworkConfig::new(k, Bandwidth::Bits(w), 64)
    }

    /// A deterministic batch touching every ordered pair several times,
    /// with some local messages interleaved.
    fn batch(k: usize, per_pair: u64) -> Vec<Envelope<Tagged>> {
        let mut out = Vec::new();
        let mut id = 0;
        for r in 0..per_pair {
            for i in 0..k {
                for j in 0..k {
                    if i != j || r == 0 {
                        out.push(Envelope::new(i, j, Tagged(id)));
                        id += 1;
                    }
                }
            }
        }
        out
    }

    fn inboxes(bsp: &mut Bsp<Tagged>, k: usize) -> Vec<Vec<u64>> {
        (0..k)
            .map(|i| bsp.take_inbox(i).iter().map(|e| e.payload.0).collect())
            .collect()
    }

    #[test]
    fn reliable_mode_reconstructs_the_fault_free_inboxes_exactly() {
        let k = 5;
        let plan = FaultPlan::new(42)
            .with_drop(0.4)
            .with_dup(0.3)
            .with_reorder(0.5)
            .with_delay(0.2)
            .with_crash(2, 1);
        let mut clean: Bsp<Tagged> = Bsp::new(cfg(k, 32));
        let mut faulty: Bsp<Tagged> = Bsp::new(cfg(k, 32));
        faulty.install_faults(plan, true);
        for step in 0..4 {
            clean.superstep(batch(k, 2 + step));
            faulty.superstep(batch(k, 2 + step));
            assert_eq!(
                inboxes(&mut clean, k),
                inboxes(&mut faulty, k),
                "superstep {step}: recovered inboxes must be bit-identical"
            );
        }
        let (c, f) = (clean.stats(), faulty.stats());
        assert_eq!(c.faults_injected, 0);
        assert_eq!(c.retransmit_bits, 0);
        assert_eq!(c.recovery_rounds, 0);
        assert!(f.faults_injected > 0, "the plan must actually fire");
        assert!(f.retransmit_bits > 0);
        assert!(f.recovery_rounds > 0);
        assert_eq!(f.machine_crashes, 1);
        assert!(
            f.rounds > c.rounds && f.total_bits > c.total_bits,
            "masking faults must cost extra rounds and bits"
        );
        // The recovery overhead is separable: base accounting matches the
        // fault-free run after subtracting the recovery counters (the base
        // attempt is charged identically; extras are dup + retransmit).
        assert_eq!(f.total_bits - f.retransmit_bits, c.total_bits);
        assert_eq!(f.rounds - f.recovery_rounds, c.rounds);
        assert_eq!(f.messages, c.messages, "logical message count unchanged");
        assert_eq!(f.supersteps, c.supersteps);
    }

    #[test]
    fn delay_only_plans_cost_recovery_rounds_but_no_retransmissions() {
        let k = 3;
        let mut bsp: Bsp<Tagged> = Bsp::new(cfg(k, 64));
        bsp.install_faults(FaultPlan::new(5).with_delay(0.5), true);
        bsp.superstep(batch(k, 4));
        let s = bsp.stats();
        assert!(s.faults_injected > 0);
        assert_eq!(s.retransmit_bits, 0, "delays are in flight, never re-sent");
        assert!(s.recovery_rounds > 0, "late arrivals need a recovery round");
    }

    #[test]
    fn dup_only_plans_cost_retransmit_bits_but_no_recovery_rounds() {
        let k = 3;
        // Wide links: the duplicate traffic fits the same one-round window,
        // so the only observable overhead is its bits.
        let mut bsp: Bsp<Tagged> = Bsp::new(cfg(k, 1 << 20));
        bsp.install_faults(FaultPlan::new(5).with_dup(0.5), true);
        bsp.superstep(batch(k, 4));
        let s = bsp.stats();
        assert!(s.faults_injected > 0);
        assert!(s.retransmit_bits > 0, "spurious copies are real traffic");
        assert_eq!(s.recovery_rounds, 0, "nothing was lost");
    }

    #[test]
    fn crash_events_fire_once_and_are_queryable() {
        let k = 4;
        let mut bsp: Bsp<Tagged> = Bsp::new(cfg(k, 32));
        bsp.install_faults(FaultPlan::new(1).with_crash(3, 0).with_crash(1, 2), true);
        assert_eq!(bsp.crash_count(), 0);
        bsp.superstep(batch(k, 1)); // superstep 0: machine 3 crashes
        assert_eq!(bsp.crash_count(), 1);
        assert_eq!(bsp.crashed_since(0), vec![3]);
        let mark = bsp.crash_count();
        bsp.superstep(batch(k, 1)); // superstep 1: nothing scheduled
        assert_eq!(bsp.crashed_since(mark), Vec::<usize>::new());
        bsp.superstep(batch(k, 1)); // superstep 2: machine 1 crashes
        assert_eq!(bsp.crashed_since(mark), vec![1]);
        assert_eq!(bsp.stats().machine_crashes, 2);
        // Everything the crashes lost was retransmitted.
        assert!(bsp.stats().retransmit_bits > 0);
        let mut clean: Bsp<Tagged> = Bsp::new(cfg(k, 32));
        for _ in 0..3 {
            clean.superstep(batch(k, 1));
        }
        assert_eq!(inboxes(&mut bsp, k), inboxes(&mut clean, k));
    }

    #[test]
    fn best_effort_mode_loses_and_duplicates_for_real() {
        let k = 2;
        // One heavy one-directional batch so the counts are easy to read.
        let msgs: Vec<Envelope<Tagged>> =
            (0..400).map(|i| Envelope::new(0, 1, Tagged(i))).collect();
        let mut bsp: Bsp<Tagged> = Bsp::new(cfg(k, 1 << 20));
        bsp.install_faults(FaultPlan::new(9).with_drop(0.3).with_dup(0.3), false);
        bsp.superstep(msgs);
        let got = bsp.take_inbox(1);
        let mut seen = std::collections::HashMap::new();
        for e in &got {
            *seen.entry(e.payload.0).or_insert(0u32) += 1;
        }
        assert!(seen.len() < 400, "some messages must be genuinely lost");
        assert!(
            seen.values().any(|&c| c == 2),
            "some messages must arrive twice"
        );
        assert_eq!(bsp.stats().recovery_rounds, 0, "no recovery protocol");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn crash_events_must_name_a_real_machine() {
        let mut bsp: Bsp<Tagged> = Bsp::new(cfg(2, 8));
        bsp.install_faults(FaultPlan::new(0).with_crash(5, 0), true);
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn unrecoverable_plans_are_rejected_at_install() {
        let mut bsp: Bsp<Tagged> = Bsp::new(cfg(2, 8));
        bsp.install_faults(FaultPlan::new(0).with_drop(1.0), true);
    }
}

#[cfg(test)]
mod encoding_tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::bandwidth::Bandwidth;

    use crate::fault::FaultPlan;
    use crate::message::{delta_varint_bits, Encoding, WireSize};

    /// An id-carrying payload with a compressible batch encoding: naively a
    /// 16-bit tag plus a 64-bit id per message; batched, one shared tag
    /// plus a delta-sorted varint id run.
    #[derive(Clone, Debug, PartialEq)]
    struct Id(u64);
    impl WireSize for Id {
        fn wire_bits(&self) -> u64 {
            16 + 64
        }
    }
    impl BatchWire for Id {
        fn batch_wire_bits(batch: &[&Envelope<Self>]) -> u64 {
            let mut ids: Vec<u64> = batch.iter().map(|e| e.payload.0).collect();
            16 + delta_varint_bits(&mut ids)
        }
    }

    fn cfg(k: usize, w: u64, encoding: Encoding) -> NetworkConfig {
        let mut c = NetworkConfig::new(k, Bandwidth::Bits(w), 64);
        c.encoding = encoding;
        c
    }

    /// A batch of clustered ids on two links plus a local message.
    fn batch() -> Vec<Envelope<Id>> {
        let mut out: Vec<Envelope<Id>> = (500..540).map(|i| Envelope::new(0, 1, Id(i))).collect();
        out.push(Envelope::new(2, 0, Id(7)));
        out.push(Envelope::new(1, 1, Id(99))); // local: free, uncounted
        out
    }

    #[test]
    fn varint_charges_the_batch_encoder_size_exactly() {
        let mut bsp: Bsp<Id> = Bsp::new(cfg(3, 8, Encoding::Varint));
        bsp.superstep(batch());
        let s = bsp.stats();
        // Link (0,1): shared tag + varint(500) + 39 one-byte deltas.
        let link01 = 16 + 16 + 39 * 8;
        // Link (2,0): shared tag + varint(7).
        let link20 = 16 + 8;
        assert_eq!(s.total_bits, link01 + link20);
        assert_eq!(s.max_link_bits, link01);
        assert_eq!(s.naive_bits, 41 * 80, "oracle is the per-message sum");
        assert_eq!(s.rounds, link01.div_ceil(8));
        assert_eq!(s.sent_bits[0], link01);
        assert_eq!(s.recv_bits[1], link01);
        assert_eq!(s.messages, 41);
    }

    #[test]
    fn naive_total_is_the_oracle_and_varint_beats_it() {
        let mut naive: Bsp<Id> = Bsp::new(cfg(3, 8, Encoding::Naive));
        let mut varint: Bsp<Id> = Bsp::new(cfg(3, 8, Encoding::Varint));
        naive.superstep(batch());
        varint.superstep(batch());
        let (n, v) = (naive.stats(), varint.stats());
        assert_eq!(n.total_bits, n.naive_bits, "naive charges the oracle");
        assert_eq!(v.naive_bits, n.total_bits, "same oracle across encodings");
        assert!(v.total_bits < n.total_bits, "clustered ids must compress");
        assert!(v.rounds < n.rounds);
        // Delivery is encoding-independent: identical inboxes, same order.
        for m in 0..3 {
            let a: Vec<Id> = naive.take_inbox(m).into_iter().map(|e| e.payload).collect();
            let b: Vec<Id> = varint
                .take_inbox(m)
                .into_iter()
                .map(|e| e.payload)
                .collect();
            assert_eq!(a, b, "machine {m}");
        }
    }

    #[test]
    fn separability_identities_hold_under_varint_faults() {
        let plan = FaultPlan::new(12)
            .with_drop(0.35)
            .with_dup(0.25)
            .with_reorder(0.4)
            .with_delay(0.15)
            .with_crash(1, 1);
        let mut clean: Bsp<Id> = Bsp::new(cfg(3, 32, Encoding::Varint));
        let mut faulty: Bsp<Id> = Bsp::new(cfg(3, 32, Encoding::Varint));
        faulty.install_faults(plan, true);
        for _ in 0..3 {
            clean.superstep(batch());
            faulty.superstep(batch());
        }
        let (c, f) = (clean.stats(), faulty.stats());
        assert!(f.faults_injected > 0, "the plan must fire");
        // Recovery overhead is separable per encoding: base accounting is
        // the clean varint charge, extras are naive-charged re-sends.
        assert_eq!(f.total_bits - f.retransmit_bits, c.total_bits);
        assert_eq!(f.rounds - f.recovery_rounds, c.rounds);
        assert_eq!(f.messages, c.messages);
        for m in 0..3 {
            let a: Vec<Id> = clean.take_inbox(m).into_iter().map(|e| e.payload).collect();
            let b: Vec<Id> = faulty
                .take_inbox(m)
                .into_iter()
                .map(|e| e.payload)
                .collect();
            assert_eq!(a, b, "reliable recovery must mask faults (machine {m})");
        }
    }
}

#[cfg(all(test, not(miri)))] // thread mesh over real sockets; outside Miri's syscall model
mod proc_conformance {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    //! Thread-mode transport conformance: the same seeds must yield
    //! bit-identical inboxes and identical logical [`CommStats`] whether a
    //! window crosses real Unix-domain sockets or stays in the in-process
    //! simulator (the accounting oracle). The root `tests/transport.rs`
    //! matrix pins the same contract across genuine OS processes and full
    //! algorithm runs; these cells keep the guarantee reachable from
    //! `cargo test -p kmachine` with no worker binary.

    use super::*;
    use crate::bandwidth::Bandwidth;
    use crate::message::Encoding;
    use crate::transport::ProcTransport;
    use crate::FaultPlan;
    use krand::prf::Prf;

    fn batch(prf: &Prf, k: usize, step: u64, len: u64) -> Vec<Envelope<u64>> {
        (0..len)
            .map(|i| {
                let src = prf.eval_mod(10, step * 1_000 + i, k as u64) as usize;
                let dst = prf.eval_mod(11, step * 1_000 + i, k as u64) as usize;
                Envelope::new(src, dst, prf.eval(12, step * 1_000 + i))
            })
            .collect()
    }

    /// Runs six seeded supersteps and returns `(inboxes, stats)`.
    fn run(
        seed: u64,
        k: usize,
        encoding: Encoding,
        plan: Option<FaultPlan>,
        proc_mode: bool,
    ) -> (Vec<Vec<u64>>, CommStats) {
        let mut cfg = NetworkConfig::new(k, Bandwidth::Bits(32), 256);
        cfg.encoding = encoding;
        let mut bsp: Bsp<u64> = Bsp::new(cfg);
        if proc_mode {
            bsp.set_transport(Box::new(ProcTransport::threads(k).expect("thread mesh")));
        }
        if let Some(p) = plan {
            bsp.install_faults(p, true);
        }
        let prf = Prf::new(seed);
        for step in 0..6u64 {
            let len = prf.eval(9, step) % 30;
            bsp.superstep(batch(&prf, k, step, len));
        }
        let inboxes = (0..k)
            .map(|m| bsp.take_inbox(m).into_iter().map(|e| e.payload).collect())
            .collect();
        (inboxes, bsp.into_stats())
    }

    fn assert_conformant(sim: (Vec<Vec<u64>>, CommStats), phys: (Vec<Vec<u64>>, CommStats)) {
        assert_eq!(sim.0, phys.0, "inboxes must be bit-identical");
        let (s, p) = (sim.1, phys.1);
        assert_eq!(s.rounds, p.rounds);
        assert_eq!(s.total_bits, p.total_bits);
        assert_eq!(s.naive_bits, p.naive_bits);
        assert_eq!(s.messages, p.messages);
        assert_eq!(s.supersteps, p.supersteps);
        assert_eq!(s.faults_injected, p.faults_injected);
        assert_eq!(s.retransmit_bits, p.retransmit_bits);
        assert_eq!(s.recovery_rounds, p.recovery_rounds);
        assert_eq!(s.sent_bits, p.sent_bits);
        assert_eq!(s.recv_bits, p.recv_bits);
    }

    #[test]
    fn thread_mesh_matches_sim_fault_free() {
        for seed in [3u64, 77] {
            assert_conformant(
                run(seed, 4, Encoding::Naive, None, false),
                run(seed, 4, Encoding::Naive, None, true),
            );
        }
    }

    #[test]
    fn thread_mesh_matches_sim_under_varint() {
        assert_conformant(
            run(11, 3, Encoding::Varint, None, false),
            run(11, 3, Encoding::Varint, None, true),
        );
    }

    #[test]
    fn thread_mesh_matches_sim_under_faults() {
        let plan = || {
            FaultPlan::new(42)
                .with_drop(0.2)
                .with_dup(0.1)
                .with_reorder(0.15)
        };
        // Retransmission waves re-cross the physical mesh; the logical
        // accounting (including recovery overhead) must not notice.
        assert_conformant(
            run(5, 3, Encoding::Naive, Some(plan()), false),
            run(5, 3, Encoding::Naive, Some(plan()), true),
        );
        assert_conformant(
            run(5, 3, Encoding::Varint, Some(plan()), false),
            run(5, 3, Encoding::Varint, Some(plan()), true),
        );
    }

    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(10))]

            /// Satellite pin (ISSUE 7): random superstep batches round-trip
            /// the real wire codec — every window is varint-framed, shipped
            /// over sockets, decoded, and must reproduce the simulator's
            /// inboxes and stats exactly.
            #[test]
            fn random_windows_round_trip_the_real_codec(
                seed in 0u64..1_000_000,
                k in 2usize..5,
            ) {
                let sim = run(seed, k, Encoding::Varint, None, false);
                let phys = run(seed, k, Encoding::Varint, None, true);
                prop_assert_eq!(&sim.0, &phys.0);
                prop_assert_eq!(sim.1.total_bits, phys.1.total_bits);
                prop_assert_eq!(sim.1.rounds, phys.1.rounds);
                prop_assert_eq!(sim.1.naive_bits, phys.1.naive_bits);
            }
        }
    }
}
