//! Superstep (BSP) execution: the layer the paper's algorithms run on.
//!
//! Every algorithm in the paper is a sequence of message batches whose
//! delivery cost is the congestion bound of Lemma 1: delivering a batch
//! takes exactly `max_{directed link} ⌈bits(link)/W⌉` rounds, because the
//! complete topology gives every ordered pair its own dedicated link and
//! batches are enqueued simultaneously. [`Bsp::superstep`] charges exactly
//! that (the fine-grained [`crate::network::Network`] provably needs the
//! same number of rounds — see this module's tests and the crate's
//! proptests), and routes messages into per-machine inboxes.

use crate::message::Envelope;
use crate::metrics::{CommStats, SuperstepLoad};
use crate::network::NetworkConfig;
use rustc_hash::FxHashMap;

/// The superstep runner.
///
/// ```
/// use kmachine::bsp::Bsp;
/// use kmachine::bandwidth::Bandwidth;
/// use kmachine::message::Envelope;
/// use kmachine::network::NetworkConfig;
///
/// let mut bsp: Bsp<u64> = Bsp::new(NetworkConfig::new(3, Bandwidth::Bits(64), 64));
/// // Two 64-bit messages on the same link: 2 rounds; one elsewhere: parallel.
/// bsp.superstep(vec![
///     Envelope::new(0, 1, 7u64),
///     Envelope::new(0, 1, 8u64),
///     Envelope::new(2, 0, 9u64),
/// ]);
/// assert_eq!(bsp.stats().rounds, 2);
/// assert_eq!(bsp.take_inbox(1).len(), 2);
/// ```
pub struct Bsp<M> {
    cfg: NetworkConfig,
    w: u64,
    stats: CommStats,
    inboxes: Vec<Vec<Envelope<M>>>,
    /// Optional machine bipartition: `cut[i]` is machine `i`'s side; bits
    /// crossing sides accumulate into `stats.cut_bits` (§4 harness).
    cut: Option<Vec<bool>>,
}

impl<M> Bsp<M> {
    /// Creates a runner over `k` machines.
    pub fn new(cfg: NetworkConfig) -> Self {
        assert!(cfg.k >= 2, "the model requires k >= 2");
        Bsp {
            w: cfg.link_bits(),
            stats: CommStats::new(cfg.k),
            inboxes: (0..cfg.k).map(|_| Vec::new()).collect(),
            cut: None,
            cfg,
        }
    }

    /// Tracks bits crossing a machine bipartition (`side[i]` = machine `i`'s
    /// side). Used by the §4 Alice/Bob communication-complexity harness.
    pub fn set_cut(&mut self, side: Vec<bool>) {
        assert_eq!(side.len(), self.cfg.k);
        self.cut = Some(side);
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// The per-link budget `W` in bits per round.
    pub fn link_bits(&self) -> u64 {
        self.w
    }

    /// Executes one superstep: routes `outgoing` (any order), charges
    /// `max_link ⌈bits/W⌉` rounds, and appends to the receivers' inboxes.
    ///
    /// Self-addressed messages are delivered for free (local computation
    /// costs nothing in the model). A superstep with no cross-machine
    /// message charges zero rounds: it is not a communication step.
    pub fn superstep(&mut self, outgoing: Vec<Envelope<M>>) {
        let mut link_bits: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        let mut machine_out = vec![0u64; self.cfg.k];
        let mut machine_in = vec![0u64; self.cfg.k];
        let mut total = 0u64;
        let mut messages = 0u64;
        for env in outgoing {
            assert!(
                env.src < self.cfg.k && env.dst < self.cfg.k,
                "bad machine id"
            );
            if env.is_local() {
                self.inboxes[env.dst].push(env);
                continue;
            }
            let bits = env.bits.max(1);
            *link_bits
                .entry((env.src as u32, env.dst as u32))
                .or_insert(0) += bits;
            machine_out[env.src] += bits;
            machine_in[env.dst] += bits;
            total += bits;
            messages += 1;
            self.stats.sent_bits[env.src] += bits;
            self.stats.recv_bits[env.dst] += bits;
            if let Some(cut) = &self.cut {
                if cut[env.src] != cut[env.dst] {
                    self.stats.cut_bits += bits;
                }
            }
            self.inboxes[env.dst].push(env);
        }
        let max_link = link_bits.values().copied().max().unwrap_or(0);
        let rounds = match self.cfg.cost_model {
            crate::bandwidth::CostModel::PerLink => max_link.div_ceil(self.w),
            crate::bandwidth::CostModel::PerMachine => {
                // §1.1 alternate view: each machine moves at most
                // W·(k−1) bits per round, send and receive separately.
                let budget = self.w * (self.cfg.k as u64 - 1);
                let max_machine = machine_out
                    .iter()
                    .chain(machine_in.iter())
                    .copied()
                    .max()
                    .unwrap_or(0);
                max_machine.div_ceil(budget)
            }
        };
        self.stats.rounds += rounds;
        self.stats.supersteps += 1;
        self.stats.messages += messages;
        self.stats.total_bits += total;
        self.stats.max_link_bits = self.stats.max_link_bits.max(max_link);
        self.stats.superstep_loads.push(SuperstepLoad {
            max_link_bits: max_link,
            total_bits: total,
            messages,
            rounds,
        });
    }

    /// Takes machine `i`'s inbox (clearing it).
    pub fn take_inbox(&mut self, i: usize) -> Vec<Envelope<M>> {
        std::mem::take(&mut self.inboxes[i])
    }

    /// Takes all inboxes at once (indexed by machine).
    pub fn take_all_inboxes(&mut self) -> Vec<Vec<Envelope<M>>> {
        let k = self.cfg.k;
        (0..k)
            .map(|i| std::mem::take(&mut self.inboxes[i]))
            .collect()
    }

    /// Charges extra rounds for a modeled sub-protocol that is not executed
    /// message-by-message (e.g. the §2.2 shared-randomness distribution).
    /// `bits_from_one_machine` is attributed to machine `src`'s send load.
    pub fn charge_modeled_rounds(&mut self, rounds: u64, bits_from_one_machine: u64, src: usize) {
        self.stats.rounds += rounds;
        self.stats.total_bits += bits_from_one_machine;
        if src < self.stats.sent_bits.len() {
            self.stats.sent_bits[src] += bits_from_one_machine;
        }
    }

    /// Charges one barrier round (e.g. a termination-detection exchange that
    /// moves O(k) tiny messages; the model still spends a round on it).
    pub fn charge_barrier(&mut self) {
        self.stats.rounds += 1;
    }

    /// Communication statistics so far.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Consumes the runner, returning its statistics.
    pub fn into_stats(self) -> CommStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::Bandwidth;
    use crate::message::WireSize;
    use crate::network::Network;

    #[derive(Clone, Debug)]
    struct B(u64);
    impl WireSize for B {
        fn wire_bits(&self) -> u64 {
            self.0
        }
    }

    fn cfg(k: usize, w: u64) -> NetworkConfig {
        NetworkConfig::new(k, Bandwidth::Bits(w), 64)
    }

    #[test]
    fn superstep_charges_max_link_rounds() {
        let mut bsp: Bsp<B> = Bsp::new(cfg(4, 10));
        bsp.superstep(vec![
            Envelope::new(0, 1, B(25)), // link (0,1): 25 bits -> 3 rounds
            Envelope::new(2, 3, B(10)), // 1 round, in parallel
            Envelope::new(3, 2, B(9)),
        ]);
        assert_eq!(bsp.stats().rounds, 3);
        assert_eq!(bsp.take_inbox(1).len(), 1);
        assert_eq!(bsp.take_inbox(2).len(), 1);
    }

    #[test]
    fn local_messages_are_free() {
        let mut bsp: Bsp<B> = Bsp::new(cfg(3, 10));
        bsp.superstep(vec![Envelope::new(1, 1, B(1_000_000))]);
        assert_eq!(bsp.stats().rounds, 0);
        assert_eq!(bsp.stats().total_bits, 0);
        assert_eq!(bsp.take_inbox(1).len(), 1);
    }

    #[test]
    fn empty_superstep_charges_nothing() {
        let mut bsp: Bsp<B> = Bsp::new(cfg(2, 10));
        bsp.superstep(vec![]);
        assert_eq!(bsp.stats().rounds, 0);
        assert_eq!(bsp.stats().supersteps, 1);
    }

    #[test]
    fn bsp_rounds_equal_fine_grained_network_rounds() {
        // The analytic charge must equal the fine-grained drain time for
        // the same batch: randomized cross-check.
        use krand::prf::Prf;
        let prf = Prf::new(77);
        for trial in 0..50u64 {
            let k = 2 + (prf.eval(0, trial) % 6) as usize;
            let w = 1 + prf.eval(1, trial) % 40;
            let msgs: Vec<(usize, usize, u64)> = (0..(prf.eval(2, trial) % 60))
                .map(|i| {
                    let s = prf.eval_mod(3, trial * 1000 + i, k as u64) as usize;
                    let mut d = prf.eval_mod(4, trial * 1000 + i, k as u64) as usize;
                    if d == s {
                        d = (d + 1) % k;
                    }
                    (s, d, 1 + prf.eval(5, trial * 1000 + i) % 100)
                })
                .collect();
            let mut bsp: Bsp<B> = Bsp::new(cfg(k, w));
            bsp.superstep(
                msgs.iter()
                    .map(|&(s, d, b)| Envelope::new(s, d, B(b)))
                    .collect(),
            );
            let mut net: Network<B> = Network::new(cfg(k, w));
            for &(s, d, b) in &msgs {
                net.send(Envelope::new(s, d, B(b)));
            }
            net.drain();
            assert_eq!(
                bsp.stats().rounds,
                net.round(),
                "trial {trial}: k={k} w={w}"
            );
        }
    }

    #[test]
    fn per_machine_cost_model_sandwich() {
        // For any batch: perMachine rounds ≤ perLink rounds ≤ (k−1)·perMachine
        // (the §1.1 equivalence up to a k−1 factor).
        use crate::bandwidth::CostModel;
        use krand::prf::Prf;
        let prf = Prf::new(31);
        for trial in 0..40u64 {
            let k = 3 + (prf.eval(0, trial) % 5) as usize;
            let w = 1 + prf.eval(1, trial) % 30;
            let msgs: Vec<(usize, usize, u64)> = (0..(prf.eval(2, trial) % 50))
                .map(|i| {
                    let s = prf.eval_mod(3, trial * 100 + i, k as u64) as usize;
                    let mut d = prf.eval_mod(4, trial * 100 + i, k as u64) as usize;
                    if d == s {
                        d = (d + 1) % k;
                    }
                    (s, d, 1 + prf.eval(5, trial * 100 + i) % 80)
                })
                .collect();
            let run = |model: CostModel| {
                let mut c = cfg(k, w);
                c.cost_model = model;
                let mut bsp: Bsp<B> = Bsp::new(c);
                bsp.superstep(
                    msgs.iter()
                        .map(|&(s, d, b)| Envelope::new(s, d, B(b)))
                        .collect(),
                );
                bsp.stats().rounds
            };
            let per_link = run(CostModel::PerLink);
            let per_machine = run(CostModel::PerMachine);
            assert!(per_machine <= per_link, "trial {trial}");
            assert!(
                per_link <= per_machine * (k as u64 - 1) + 1,
                "trial {trial}: {per_link} vs {per_machine} (k={k})"
            );
        }
    }

    #[test]
    fn per_machine_counts_send_and_receive_separately() {
        use crate::bandwidth::CostModel;
        // One machine receives from everyone: in-load drives the rounds.
        let k = 5;
        let mut c = cfg(k, 10);
        c.cost_model = CostModel::PerMachine;
        let mut bsp: Bsp<B> = Bsp::new(c);
        // Machine 0 receives 4 × 40 bits = 160; budget = 10·4 = 40/round.
        bsp.superstep((1..k).map(|s| Envelope::new(s, 0, B(40))).collect());
        assert_eq!(bsp.stats().rounds, 4);
    }

    #[test]
    fn cut_bits_track_the_bipartition() {
        let mut bsp: Bsp<B> = Bsp::new(cfg(4, 10));
        bsp.set_cut(vec![true, true, false, false]);
        bsp.superstep(vec![
            Envelope::new(0, 1, B(5)),  // same side: not counted
            Envelope::new(1, 2, B(7)),  // crossing
            Envelope::new(3, 0, B(11)), // crossing
            Envelope::new(2, 3, B(13)), // same side
        ]);
        assert_eq!(bsp.stats().cut_bits, 18);
        assert_eq!(bsp.stats().total_bits, 36);
    }

    #[test]
    fn modeled_charges_accumulate() {
        let mut bsp: Bsp<B> = Bsp::new(cfg(2, 10));
        bsp.charge_modeled_rounds(7, 140, 0);
        bsp.charge_barrier();
        assert_eq!(bsp.stats().rounds, 8);
        assert_eq!(bsp.stats().total_bits, 140);
        assert_eq!(bsp.stats().sent_bits[0], 140);
    }
}
