//! Parallel execution of per-machine local computation.
//!
//! Local computation is free in the model but real in wall-clock time; the
//! simulator runs each machine's local step concurrently on
//! `std::thread::scope` workers — plain standard-library scoped threads,
//! no locking crates and no `unsafe`. [`par_map_machines`] hands out
//! machine indices through one shared atomic counter (work stealing for
//! uneven loads); [`par_for_each_state`] splits the per-machine state
//! slice into disjoint `&mut` chunks (machine workloads are near-uniform
//! there, so static chunking balances well). Both cap the worker count at
//! the available hardware threads: one thread per machine would
//! oversubscribe for k ≫ cores.

#![warn(clippy::unwrap_used, clippy::expect_used)]
// ^ window-protocol / worker-path panic hygiene (kcheck KC05): a
// panic here kills a worker mid-window instead of failing the
// attempt cleanly. Tests opt back in below.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use for `k` tasks.
fn workers(k: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    hw.min(k).max(1)
}

/// Applies `f` to every index in `0..k` in parallel, collecting results in
/// index order. `f` typically runs one machine's local computation for a
/// superstep and returns its outbox.
pub fn par_map_machines<T, F>(k: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if k == 0 {
        return Vec::new();
    }
    let nw = workers(k);
    if nw == 1 || k == 1 {
        return (0..k).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..k).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nw)
            .map(|_| {
                let (next, f) = (&next, &f);
                scope.spawn(move || {
                    let mut produced: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= k {
                            break;
                        }
                        produced.push((i, f(i)));
                    }
                    produced
                })
            })
            .collect();
        // Join every worker before resurfacing a panic: unwinding with
        // threads still unjoined would make `scope` panic again with a
        // generic message, losing the original payload (and a panic during
        // that unwind would abort the process).
        let mut panicked = None;
        for h in handles {
            match h.join() {
                Ok(produced) => {
                    for (i, v) in produced {
                        out[i] = Some(v);
                    }
                }
                Err(payload) => panicked = panicked.or(Some(payload)),
            }
        }
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
    });
    let filled: Vec<T> = out.into_iter().flatten().collect();
    // Every index 0..k was claimed exactly once via the atomic counter, so
    // a short result can only mean a logic bug above — fail loudly rather
    // than hand back a truncated per-machine vector.
    assert_eq!(filled.len(), k, "par_map_machines filled every slot");
    filled
}

/// Like [`par_map_machines`] but mutates per-machine state slices in
/// parallel: `f(i, &mut states[i])`.
pub fn par_for_each_state<S, F>(states: &mut [S], f: F)
where
    S: Send,
    F: Fn(usize, &mut S) + Sync,
{
    let k = states.len();
    if k == 0 {
        return;
    }
    let nw = workers(k);
    if nw == 1 || k == 1 {
        for (i, s) in states.iter_mut().enumerate() {
            f(i, s);
        }
        return;
    }
    // Contiguous chunks give each worker a disjoint `&mut` slice — no
    // locking needed; machine workloads are near-uniform, so static
    // chunking balances well enough.
    let chunk = k.div_ceil(nw);
    std::thread::scope(|scope| {
        let handles: Vec<_> = states
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, block)| {
                let f = &f;
                let base = ci * chunk;
                scope.spawn(move || {
                    for (j, s) in block.iter_mut().enumerate() {
                        f(base + j, s);
                    }
                })
            })
            .collect();
        // Explicit joins, as in `par_map_machines`: letting `scope`
        // auto-join a panicked worker replaces the payload with its
        // generic "a scoped thread panicked" message.
        let mut panicked = None;
        for h in handles {
            if let Err(payload) = h.join() {
                panicked = panicked.or(Some(payload));
            }
        }
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
    });
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        let out = par_map_machines(37, |i| i * i);
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_small_k() {
        assert_eq!(par_map_machines(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_machines(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn for_each_state_mutates_all() {
        let mut states: Vec<u64> = vec![0; 23];
        par_for_each_state(&mut states, |i, s| *s = i as u64 + 1);
        assert!(states.iter().enumerate().all(|(i, &s)| s == i as u64 + 1));
    }

    #[test]
    #[should_panic(expected = "machine 13 hit a distinctive wall")]
    fn map_worker_panic_payload_survives() {
        // The original panic message must reach the caller, not a generic
        // "worker panicked" relay (k > workers so the pool path runs).
        par_map_machines(64, |i| {
            if i == 13 {
                panic!("machine 13 hit a distinctive wall");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "state 7 exploded with context")]
    fn for_each_state_worker_panic_payload_survives() {
        let mut states: Vec<u64> = vec![0; 64];
        par_for_each_state(&mut states, |i, _| {
            if i == 7 {
                panic!("state 7 exploded with context");
            }
        });
    }

    #[test]
    fn parallel_work_actually_runs_concurrently_or_at_least_correctly() {
        // Heavier closure to exercise the thread pool path.
        let out = par_map_machines(64, |i| {
            let mut acc = 0u64;
            for x in 0..10_000u64 {
                acc = acc.wrapping_add(x.wrapping_mul(i as u64 + 1));
            }
            acc
        });
        for (i, &v) in out.iter().enumerate() {
            let mut acc = 0u64;
            for x in 0..10_000u64 {
                acc = acc.wrapping_add(x.wrapping_mul(i as u64 + 1));
            }
            assert_eq!(v, acc);
        }
    }
}
