//! Deterministic-iteration helpers over the hash containers.
//!
//! `FxHashMap`/`FxHashSet` iteration order is an artifact of hash values
//! and insertion history — reproducible on one build, but not *canonical*:
//! it silently couples any order-sensitive consumer to the hasher's
//! internals. Every guarantee this workspace makes (bit-identical outputs
//! across transports, fault plans and dynamic batches; exact comm
//! accounting) rests on message-producing and accounting paths iterating
//! in an order that is a function of the *data*, not of the container.
//!
//! These helpers are the sanctioned route: they materialize a hash
//! container's contents in ascending key order (or perform an explicitly
//! order-insensitive reduction). The `kcheck` static pass (`kmm check`,
//! DESIGN.md §3.13) flags direct unordered iteration in the deterministic
//! paths; code routed through this module is clean by construction. This
//! module itself is the single audited exception in the lint's scope.
//!
//! The sort costs `O(s log s)` on a container of size `s` — noise next to
//! the work the iteration feeds (sketch sums, envelope construction), and
//! a price worth paying for canonical trajectories.

use rustc_hash::{FxHashMap, FxHashSet};

/// The map's entries in ascending key order, values borrowed.
pub fn sorted_entries<K: Ord + Copy, V>(map: &FxHashMap<K, V>) -> Vec<(K, &V)> {
    let mut v: Vec<(K, &V)> = map.iter().map(|(&k, val)| (k, val)).collect();
    v.sort_unstable_by_key(|&(k, _)| k);
    v
}

/// The map's entries in ascending key order, consuming the map.
pub fn into_sorted_entries<K: Ord, V>(map: FxHashMap<K, V>) -> Vec<(K, V)> {
    let mut v: Vec<(K, V)> = map.into_iter().collect();
    v.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    v
}

/// The map's keys in ascending order.
pub fn sorted_keys<K: Ord + Copy, V>(map: &FxHashMap<K, V>) -> Vec<K> {
    let mut v: Vec<K> = map.keys().copied().collect();
    v.sort_unstable();
    v
}

/// The set's members in ascending order.
pub fn sorted_members<T: Ord + Copy>(set: &FxHashSet<T>) -> Vec<T> {
    let mut v: Vec<T> = set.iter().copied().collect();
    v.sort_unstable();
    v
}

/// The map's values in ascending *key* order.
pub fn sorted_values<K: Ord + Copy, V: Copy>(map: &FxHashMap<K, V>) -> Vec<V> {
    sorted_entries(map).into_iter().map(|(_, &v)| v).collect()
}

/// The maximum value in the map — an order-insensitive reduction (every
/// iteration order yields the same maximum), exposed here so accounting
/// code can take a per-link maximum without open-coding an unordered walk.
pub fn max_value<K, V: Ord + Copy>(map: &FxHashMap<K, V>) -> Option<V> {
    map.values().copied().max()
}

/// Does any value satisfy `pred`? Order-insensitive: `any` over a pure
/// predicate yields the same answer in every visit order (short-circuiting
/// only changes how fast, never what).
pub fn any_value<K, V>(map: &FxHashMap<K, V>, pred: impl FnMut(&V) -> bool) -> bool {
    map.values().any(pred)
}

/// The entry minimizing `key(k, v)`, ties broken by the smaller map key —
/// so the winner is a function of the data, not of iteration order, even
/// when several entries share the minimal key.
pub fn min_entry_by<K: Ord + Copy, V, T: Ord>(
    map: &FxHashMap<K, V>,
    mut key: impl FnMut(K, &V) -> T,
) -> Option<(K, &V)> {
    map.iter()
        .map(|(&k, v)| (k, v))
        .min_by(|a, b| key(a.0, a.1).cmp(&key(b.0, b.1)).then(a.0.cmp(&b.0)))
}

/// Apply `f` to every value in place. Sanctioned for per-entry mutation
/// only: the closure must not observe or accumulate cross-entry state, so
/// the post-state is independent of visit order.
pub fn for_each_value_mut<K, V>(map: &mut FxHashMap<K, V>, mut f: impl FnMut(&mut V)) {
    for v in map.values_mut() {
        f(v);
    }
}

/// Apply `f` to every `(key, value)` pair in place; same per-entry
/// independence contract as [`for_each_value_mut`].
pub fn for_each_entry_mut<K: Copy, V>(map: &mut FxHashMap<K, V>, mut f: impl FnMut(K, &mut V)) {
    for (&k, v) in map.iter_mut() {
        f(k, v);
    }
}

/// Keep the entries matching `pred`. Sanctioned for *pure* predicates
/// only (no side effects, no cross-entry state): then the retained set is
/// independent of visit order.
pub fn retain_where<K, V>(map: &mut FxHashMap<K, V>, pred: impl FnMut(&K, &mut V) -> bool) {
    map.retain(pred);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_come_back_key_sorted() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for (k, v) in [(9, "i"), (2, "b"), (7, "g"), (1, "a")] {
            m.insert(k, v);
        }
        let e = sorted_entries(&m);
        assert_eq!(
            e.iter().map(|&(k, &v)| (k, v)).collect::<Vec<_>>(),
            vec![(1, "a"), (2, "b"), (7, "g"), (9, "i")]
        );
        assert_eq!(sorted_keys(&m), vec![1, 2, 7, 9]);
        let owned = into_sorted_entries(m);
        assert_eq!(owned, vec![(1, "a"), (2, "b"), (7, "g"), (9, "i")]);
    }

    #[test]
    fn set_members_come_back_sorted() {
        let mut s: FxHashSet<u32> = FxHashSet::default();
        for x in [5, 1, 4, 1, 3] {
            s.insert(x);
        }
        assert_eq!(sorted_members(&s), vec![1, 3, 4, 5]);
    }

    #[test]
    fn max_value_matches_sorted_scan() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        assert_eq!(max_value(&m), None);
        for (i, b) in [(0, 10u64), (1, 99), (2, 7)] {
            m.insert((i, i + 1), b);
        }
        assert_eq!(max_value(&m), Some(99));
        let via_sorted = sorted_entries(&m).into_iter().map(|(_, &b)| b).max();
        assert_eq!(max_value(&m), via_sorted);
    }

    #[test]
    fn reductions_and_mutation_helpers() {
        let mut m: FxHashMap<u32, i64> = FxHashMap::default();
        for (k, v) in [(3, -1), (1, 5), (2, 0)] {
            m.insert(k, v);
        }
        assert_eq!(sorted_values(&m), vec![5, 0, -1]);
        assert!(any_value(&m, |&v| v < 0));
        assert!(!any_value(&m, |&v| v > 9));
        for_each_value_mut(&mut m, |v| *v += 10);
        assert_eq!(sorted_values(&m), vec![15, 10, 9]);
        for_each_entry_mut(&mut m, |k, v| *v += i64::from(k));
        assert_eq!(sorted_values(&m), vec![16, 12, 12]);
        assert_eq!(min_entry_by(&m, |_, &v| v), Some((2, &12)));
        retain_where(&mut m, |_, v| *v >= 12);
        assert_eq!(sorted_keys(&m), vec![1, 2, 3]);
        retain_where(&mut m, |&k, _| k < 3);
        assert_eq!(sorted_keys(&m), vec![1, 2]);
    }
}
