//! Event-driven execution: machines as programs reacting round by round.
//!
//! The BSP layer fits the paper's batch-structured algorithms; some
//! baselines (and genuinely asynchronous-style protocols) are more natural
//! as per-round reactive programs. A [`Program`] receives the messages
//! delivered to its machine in each round and emits new ones; the
//! [`Runner`] drives all programs against the fine-grained
//! [`crate::network::Network`] until quiescence (all programs halted and
//! all link queues drained).
//!
//! Unlike the BSP layer, messages pipeline: a machine can react to a
//! message while other messages are still in transit, so event-driven
//! executions can finish in fewer rounds than their BSP batchings.

use crate::message::Envelope;
use crate::metrics::CommStats;
use crate::network::{Network, NetworkConfig};

/// One machine's behaviour.
pub trait Program<M> {
    /// Called every round with the messages delivered to this machine this
    /// round (possibly empty). New messages are pushed onto `out`
    /// (self-addressed messages are not allowed — local work is free and
    /// should just mutate state).
    fn round(&mut self, round: u64, inbox: Vec<Envelope<M>>, out: &mut Vec<Envelope<M>>);

    /// Whether this machine is passive: it will send nothing more unless a
    /// message wakes it up. The run ends when every program is passive and
    /// the network is idle.
    fn passive(&self) -> bool;
}

/// Drives `k` programs against a fine-grained network.
pub struct Runner<M, P> {
    net: Network<M>,
    programs: Vec<P>,
}

impl<M: Clone, P: Program<M>> Runner<M, P> {
    /// Creates a runner; `programs.len()` must equal the configured `k`.
    pub fn new(cfg: NetworkConfig, programs: Vec<P>) -> Self {
        assert_eq!(programs.len(), cfg.k, "one program per machine");
        Runner {
            net: Network::new(cfg),
            programs,
        }
    }

    /// Runs until quiescence or `max_rounds`; returns the rounds used.
    ///
    /// Round structure: everything delivered by round `r`'s transmissions
    /// is handed to the receiving programs, whose replies enter the link
    /// queues for round `r + 1` — the synchronous semantics of §1.1.
    pub fn run(&mut self, max_rounds: u64) -> u64 {
        let k = self.programs.len();
        // Round 0: programs initialize (empty inboxes).
        let mut out = Vec::new();
        for p in &mut self.programs {
            p.round(0, Vec::new(), &mut out);
        }
        for env in out.drain(..) {
            self.net.send(env);
        }
        while self.net.round() < max_rounds {
            if self.net.idle() && self.programs.iter().all(Program::passive) {
                break;
            }
            let delivered = self.net.step();
            let mut inboxes: Vec<Vec<Envelope<M>>> = (0..k).map(|_| Vec::new()).collect();
            for env in delivered {
                inboxes[env.dst].push(env);
            }
            let round = self.net.round();
            for (p, inbox) in self.programs.iter_mut().zip(inboxes) {
                p.round(round, inbox, &mut out);
            }
            for env in out.drain(..) {
                self.net.send(env);
            }
        }
        self.net.round()
    }

    /// The programs, for result extraction.
    pub fn programs(&self) -> &[P] {
        &self.programs
    }

    /// Communication statistics.
    pub fn stats(&self) -> &CommStats {
        self.net.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::Bandwidth;
    use crate::message::WireSize;

    #[derive(Clone, Debug)]
    struct Token(u64);
    impl WireSize for Token {
        fn wire_bits(&self) -> u64 {
            32
        }
    }

    /// Passes a token around the ring `0 → 1 → ... → k-1 → 0` `laps` times.
    struct RingHop {
        id: usize,
        k: usize,
        remaining: u64,
        seen: u64,
        holds_token: bool,
    }

    impl Program<Token> for RingHop {
        fn round(
            &mut self,
            _round: u64,
            inbox: Vec<Envelope<Token>>,
            out: &mut Vec<Envelope<Token>>,
        ) {
            for env in inbox {
                self.seen += 1;
                if env.payload.0 > 0 {
                    out.push(Envelope::new(
                        self.id,
                        (self.id + 1) % self.k,
                        Token(env.payload.0 - 1),
                    ));
                }
            }
            if self.holds_token {
                self.holds_token = false;
                out.push(Envelope::new(
                    self.id,
                    (self.id + 1) % self.k,
                    Token(self.remaining),
                ));
            }
        }

        fn passive(&self) -> bool {
            !self.holds_token
        }
    }

    #[test]
    fn ring_token_takes_one_round_per_hop() {
        let k = 5;
        let hops = 12u64;
        let programs: Vec<RingHop> = (0..k)
            .map(|id| RingHop {
                id,
                k,
                remaining: hops,
                seen: 0,
                holds_token: id == 0,
            })
            .collect();
        let cfg = NetworkConfig::new(k, Bandwidth::Bits(64), 64);
        let mut runner = Runner::new(cfg, programs);
        let rounds = runner.run(10_000);
        // hops+1 messages each take exactly one round on an uncongested ring.
        assert_eq!(rounds, hops + 1);
        let total_seen: u64 = runner.programs().iter().map(|p| p.seen).sum();
        assert_eq!(total_seen, hops + 1);
    }

    #[test]
    fn congestion_slows_the_event_driven_run() {
        // The same token but with 8-bit links: each 32-bit hop takes 4 rounds.
        let k = 4;
        let hops = 6u64;
        let programs: Vec<RingHop> = (0..k)
            .map(|id| RingHop {
                id,
                k,
                remaining: hops,
                seen: 0,
                holds_token: id == 0,
            })
            .collect();
        let cfg = NetworkConfig::new(k, Bandwidth::Bits(8), 64);
        let mut runner = Runner::new(cfg, programs);
        let rounds = runner.run(10_000);
        assert_eq!(rounds, 4 * (hops + 1));
    }

    #[test]
    fn quiescent_start_ends_immediately() {
        let programs: Vec<RingHop> = (0..3)
            .map(|id| RingHop {
                id,
                k: 3,
                remaining: 0,
                seen: 0,
                holds_token: false,
            })
            .collect();
        let cfg = NetworkConfig::new(3, Bandwidth::Bits(8), 64);
        let mut runner = Runner::new(cfg, programs);
        assert_eq!(runner.run(100), 0);
    }
}
