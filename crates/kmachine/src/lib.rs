#![warn(missing_docs)]
//! The k-machine model simulator (paper §1.1).
//!
//! `k ≥ 2` machines are pairwise interconnected by bidirectional
//! point-to-point links. Computation advances in synchronous rounds; each
//! *directed* link carries at most `W = O(polylog n)` bits per round; local
//! computation is free. The round complexity of an algorithm is the number
//! of rounds until termination — this crate counts exactly that, plus every
//! communication metric the experiments need (total bits, per-link maxima,
//! per-machine send/receive loads).
//!
//! Two execution layers are provided:
//!
//! * [`network::Network`] — a fine-grained per-round stepper with per-link
//!   FIFO queues and partial transmission of oversized messages.
//! * [`bsp::Bsp`] — a superstep runner: all messages of a batch are routed
//!   and the step is charged `max_link ⌈bits/W⌉` rounds, which is provably
//!   the number of rounds the fine-grained network needs for the same batch
//!   (property-tested in this crate). The paper's algorithms are sequences
//!   of such batches (Lemma 1 message schedules), so the BSP layer charges
//!   exactly what the paper's analysis counts.
//!
//! Both layers accept a deterministic [`fault::FaultPlan`] — seeded
//! per-message drop/duplicate/reorder/delay decisions plus scheduled
//! machine crashes. The BSP layer masks an installed plan with a
//! per-superstep ack/retransmit protocol whose cost lands in the
//! `faults_injected` / `retransmit_bits` / `recovery_rounds` counters of
//! [`metrics::CommStats`] (DESIGN.md §3.10).
//!
//! How a window's bytes travel is pluggable ([`transport::Transport`],
//! DESIGN.md §3.12): the in-process simulator (the accounting oracle,
//! bit-for-bit the historical path) or a real multi-process backend — one
//! OS worker process per machine exchanging length-prefixed, seq-numbered
//! frames over Unix-domain sockets, with the PR 6 varint batch encoding as
//! the actual wire format and worker crash/respawn mapped onto the
//! [`fault::CrashEvent`] recovery semantics.
//!
//! Every layer can additionally narrate itself through the structured
//! [`trace`] event stream (DESIGN.md §3.14): a zero-cost-when-off
//! [`trace::Tracer`] receives sequence-numbered, deterministic logical
//! events (supersteps, fault waves, engine phases) plus a separate
//! physical channel for transport wall-clock observations.

pub mod bandwidth;
pub mod bsp;
pub mod det;
pub mod fault;
pub mod link;
pub mod message;
pub mod metrics;
pub mod network;
pub mod par;
pub mod program;
pub mod trace;
pub mod transport;

pub use bandwidth::{Bandwidth, CostModel};
pub use bsp::Bsp;
pub use fault::{CrashEvent, FaultPlan};
pub use message::{Envelope, WireCodec, WireSize};
pub use metrics::CommStats;
pub use network::Network;
pub use program::{Program, Runner};
pub use trace::{PhysEvent, PhysRecord, TraceEvent, TraceRecord, TraceSink, Tracer};
pub use transport::{ProcTransport, SimTransport, Transport, TransportKind, TransportSel};
