//! Message envelopes with explicit wire sizes.
//!
//! The simulator does not serialize payloads; instead every payload type
//! reports its size in bits through [`WireSize`], using the encodings the
//! paper assumes (ids of `⌈log₂ n⌉` bits, sketches of `polylog(n)` bits).
//! This keeps the hot path allocation-free while making every byte of the
//! round accounting explicit and auditable.
//!
//! Two wire encodings are supported ([`Encoding`]):
//!
//! * **Naive** — every message carries its own type tag and full-width
//!   fields; the charged size is the per-message [`Envelope::bits`] captured
//!   at construction. This is the historical accounting and stays the
//!   bit-for-bit default.
//! * **Varint** — the superstep layer groups each directed link's messages
//!   into per-type *runs* and charges the [`BatchWire`] batch size: one
//!   shared tag per run, delta-sorted varint ids, varint fields. The naive
//!   per-message sum is still accumulated as the oracle counter
//!   [`crate::metrics::CommStats::naive_bits`], so the compression ratio is
//!   auditable on every run.

/// A payload that knows its encoded size in bits.
pub trait WireSize {
    /// The number of bits this payload occupies on a link.
    fn wire_bits(&self) -> u64;
}

/// A payload that can actually be serialized onto a byte wire (the process
/// transport, DESIGN.md §3.12). [`WireSize`]/[`BatchWire`] *price* payloads
/// for the round accounting; `WireCodec` moves them for real. The encoding
/// is self-delimiting (varints and length-prefixed runs), so frames can be
/// concatenated and decoded back without an outer schema.
pub trait WireCodec: Sized {
    /// Appends this payload's byte encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one payload from the reader, consuming exactly the bytes
    /// [`WireCodec::encode`] produced.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// A decode failure: the byte offset it happened at and the field being
/// read. Field-precise by construction — every reader primitive names the
/// field it was asked for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset into the buffer at which decoding failed.
    pub offset: usize,
    /// The field whose decode failed.
    pub field: &'static str,
    /// What went wrong.
    pub reason: &'static str,
}

impl WireError {
    /// A decode failure at `offset` while reading `field`.
    pub fn new(offset: usize, field: &'static str, reason: &'static str) -> Self {
        WireError {
            offset,
            field,
            reason,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wire decode error at byte {}: field `{}`: {}",
            self.offset, self.field, self.reason
        )
    }
}

impl std::error::Error for WireError {}

/// A cursor over an encoded buffer, used by [`WireCodec::decode`].
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// The current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn err(&self, field: &'static str, reason: &'static str) -> WireError {
        WireError {
            offset: self.pos,
            field,
            reason,
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self, field: &'static str) -> Result<u8, WireError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| self.err(field, "unexpected end of buffer"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads one LEB128 varint (the byte realization of [`varint_bits`]).
    pub fn varint(&mut self, field: &'static str) -> Result<u64, WireError> {
        let mut x = 0u64;
        for shift in (0..).step_by(7) {
            if shift >= 64 {
                return Err(self.err(field, "varint overflows u64"));
            }
            let b = self.u8(field)?;
            x |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(x);
            }
        }
        unreachable!()
    }

    /// Reads a 128-bit LEB128 varint (sketch cell index sums).
    pub fn varint128(&mut self, field: &'static str) -> Result<u128, WireError> {
        let mut x = 0u128;
        for shift in (0..).step_by(7) {
            if shift >= 128 {
                return Err(self.err(field, "varint overflows u128"));
            }
            let b = self.u8(field)?;
            x |= u128::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(x);
            }
        }
        unreachable!()
    }

    /// Reads a zigzag-coded signed varint.
    pub fn signed(&mut self, field: &'static str) -> Result<i64, WireError> {
        Ok(unzigzag64(self.varint(field)?))
    }

    /// Reads a zigzag-coded signed 128-bit varint.
    pub fn signed128(&mut self, field: &'static str) -> Result<i128, WireError> {
        Ok(unzigzag128(self.varint128(field)?))
    }

    /// Reads exactly `n` raw bytes.
    pub fn bytes(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.err(field, "unexpected end of buffer"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
}

/// Appends one LEB128 varint: the byte encoding whose size [`varint_bits`]
/// prices (one byte per started 7-bit group).
pub fn put_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let b = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Appends a 128-bit LEB128 varint.
pub fn put_varint128(out: &mut Vec<u8>, mut x: u128) {
    loop {
        let b = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Appends a zigzag-coded signed varint.
pub fn put_signed(out: &mut Vec<u8>, x: i64) {
    put_varint(out, zigzag64(x));
}

/// Zigzag-maps a signed value to an unsigned one (small magnitudes stay
/// small: 0, -1, 1, -2 → 0, 1, 2, 3).
pub fn zigzag64(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

/// Inverse of [`zigzag64`].
pub fn unzigzag64(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

/// Appends a zigzag-coded signed 128-bit varint.
pub fn put_signed128(out: &mut Vec<u8>, x: i128) {
    put_varint128(out, zigzag128(x));
}

/// 128-bit [`zigzag64`].
pub fn zigzag128(x: i128) -> u128 {
    ((x << 1) ^ (x >> 127)) as u128
}

/// Inverse of [`zigzag128`].
pub fn unzigzag128(x: u128) -> i128 {
    ((x >> 1) as i128) ^ -((x & 1) as i128)
}

/// Which wire encoding the superstep layer charges bandwidth under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Encoding {
    /// Per-message accounting: flat tag + full-width ids per message (the
    /// historical charging, and the oracle for the varint ablation).
    #[default]
    Naive,
    /// Per-link batch accounting: per-type runs share one tag, ids are
    /// delta-sorted varints ([`BatchWire::batch_wire_bits`]).
    Varint,
}

/// The LEB128-style cost of one unsigned value: 8 bits (7 data bits + 1
/// continuation bit) per started 7-bit group, at least one group.
pub fn varint_bits(x: u64) -> u64 {
    8 * u64::from((64 - x.leading_zeros()).div_ceil(7).max(1))
}

/// The cost of a *delta-sorted* varint run: the values are sorted ascending
/// and each is encoded as the gap to its predecessor (the first as-is).
/// Sorting is free — the receiver does not need the original order of a
/// same-type run — and turns clustered id sets into streams of tiny gaps.
pub fn delta_varint_bits(vals: &mut [u64]) -> u64 {
    vals.sort_unstable();
    let mut prev = 0u64;
    let mut bits = 0u64;
    for &v in vals.iter() {
        bits += varint_bits(v - prev);
        prev = v;
    }
    bits
}

/// A payload type whose same-link batches can be charged as one encoded
/// buffer. The default is the naive per-message sum, so plain payloads are
/// unaffected by [`Encoding::Varint`]; types with compressible structure
/// override [`BatchWire::batch_wire_bits`].
pub trait BatchWire: Sized {
    /// Encoded size in bits of one directed link's message batch.
    fn batch_wire_bits(batch: &[&Envelope<Self>]) -> u64 {
        batch.iter().map(|e| e.bits.max(1)).sum()
    }

    /// A stable snake_case name for this payload's kind, used by the
    /// [`crate::trace`] superstep histograms. Types with one shape keep
    /// the default; enums override with per-variant names.
    fn kind_name(&self) -> &'static str {
        "msg"
    }
}

impl BatchWire for u64 {}
impl BatchWire for () {}

impl WireCodec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, *self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.varint("u64")
    }
}

impl WireCodec for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, u64::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        u32::try_from(r.varint("u32")?).map_err(|_| WireError {
            offset: r.offset(),
            field: "u32",
            reason: "value overflows u32",
        })
    }
}

impl WireCodec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl WireSize for u64 {
    fn wire_bits(&self) -> u64 {
        64
    }
}

impl WireSize for () {
    fn wire_bits(&self) -> u64 {
        1
    }
}

/// A routed message: source machine, destination machine, payload.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Sending machine id in `[0, k)`.
    pub src: usize,
    /// Receiving machine id in `[0, k)`.
    pub dst: usize,
    /// The payload.
    pub payload: M,
    /// Wire size in bits, captured at construction.
    pub bits: u64,
}

impl<M: WireSize> Envelope<M> {
    /// Wraps a payload, capturing its wire size.
    pub fn new(src: usize, dst: usize, payload: M) -> Self {
        let bits = payload.wire_bits();
        Envelope {
            src,
            dst,
            payload,
            bits,
        }
    }
}

impl<M> Envelope<M> {
    /// Wraps a payload with an explicitly computed wire size (for payload
    /// types whose encoding depends on context such as the id width
    /// `⌈log₂ n⌉`, which the payload itself cannot know).
    pub fn with_bits(src: usize, dst: usize, payload: M, bits: u64) -> Self {
        Envelope {
            src,
            dst,
            payload,
            bits,
        }
    }

    /// Whether the message stays on its source machine (free in the model:
    /// local computation costs nothing, so a self-addressed message is just
    /// local state).
    pub fn is_local(&self) -> bool {
        self.src == self.dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);
    impl WireSize for Fixed {
        fn wire_bits(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn envelope_captures_wire_size() {
        let e = Envelope::new(0, 1, Fixed(123));
        assert_eq!(e.bits, 123);
        assert!(!e.is_local());
        let l = Envelope::new(2, 2, Fixed(5));
        assert!(l.is_local());
    }

    #[test]
    fn varint_bits_grow_by_seven_bit_groups() {
        assert_eq!(varint_bits(0), 8);
        assert_eq!(varint_bits(127), 8);
        assert_eq!(varint_bits(128), 16);
        assert_eq!(varint_bits((1 << 14) - 1), 16);
        assert_eq!(varint_bits(1 << 14), 24);
        assert_eq!(varint_bits(u64::MAX), 80);
    }

    #[test]
    fn delta_sorted_runs_beat_full_width_ids() {
        // A clustered id set: deltas are tiny, so the run costs one byte
        // per id after the first.
        let mut ids: Vec<u64> = (1000..1060).collect();
        assert_eq!(delta_varint_bits(&mut ids), 16 + 59 * 8);
        // Order independence: sorting happens inside.
        let mut shuffled = vec![1040u64, 1000, 1059, 1020];
        let mut sorted = vec![1000u64, 1020, 1040, 1059];
        assert_eq!(
            delta_varint_bits(&mut shuffled),
            delta_varint_bits(&mut sorted)
        );
    }

    #[test]
    fn varint_bytes_price_exactly_what_varint_bits_says() {
        // The codec is the byte realization of the PR 6 pricing function:
        // every value costs exactly `varint_bits / 8` bytes on the wire.
        for x in [0u64, 1, 127, 128, (1 << 14) - 1, 1 << 14, 1 << 40, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, x);
            assert_eq!(8 * buf.len() as u64, varint_bits(x), "x = {x}");
            let mut r = WireReader::new(&buf);
            assert_eq!(r.varint("x").unwrap(), x);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn zigzag_round_trips_signed_values() {
        for x in [0i64, -1, 1, -2, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag64(zigzag64(x)), x);
            let mut buf = Vec::new();
            put_signed(&mut buf, x);
            let mut r = WireReader::new(&buf);
            assert_eq!(r.signed("x").unwrap(), x);
        }
        assert_eq!(zigzag64(0), 0);
        assert_eq!(zigzag64(-1), 1);
        assert_eq!(zigzag64(1), 2);
    }

    #[test]
    fn decode_errors_carry_offset_and_field() {
        // Truncated buffer: the error names the field and points past the
        // last byte.
        let mut buf = Vec::new();
        put_varint(&mut buf, 300); // two bytes
        let mut r = WireReader::new(&buf[..1]);
        let e = r.varint("edge_count").unwrap_err();
        assert_eq!(e.field, "edge_count");
        assert_eq!(e.offset, 1);
        assert!(e.to_string().contains("edge_count"), "{e}");
        // Non-terminating varint: overflow is detected, not wrapped.
        let bad = [0xffu8; 11];
        let e = WireReader::new(&bad).varint("id").unwrap_err();
        assert_eq!(e.reason, "varint overflows u64");
    }

    #[test]
    fn varint128_round_trips_wide_values() {
        for x in [0u128, 1, u64::MAX as u128, u128::MAX, 1 << 100] {
            let mut buf = Vec::new();
            put_varint128(&mut buf, x);
            let mut r = WireReader::new(&buf);
            assert_eq!(r.varint128("w").unwrap(), x);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn default_batch_wire_is_the_naive_sum() {
        let batch = [
            Envelope::new(0, 1, 7u64),
            Envelope::new(0, 1, 8u64),
            Envelope::new(0, 1, 9u64),
        ];
        let refs: Vec<&Envelope<u64>> = batch.iter().collect();
        assert_eq!(u64::batch_wire_bits(&refs), 3 * 64);
    }
}
