//! Message envelopes with explicit wire sizes.
//!
//! The simulator does not serialize payloads; instead every payload type
//! reports its size in bits through [`WireSize`], using the encodings the
//! paper assumes (ids of `⌈log₂ n⌉` bits, sketches of `polylog(n)` bits).
//! This keeps the hot path allocation-free while making every byte of the
//! round accounting explicit and auditable.

/// A payload that knows its encoded size in bits.
pub trait WireSize {
    /// The number of bits this payload occupies on a link.
    fn wire_bits(&self) -> u64;
}

impl WireSize for u64 {
    fn wire_bits(&self) -> u64 {
        64
    }
}

impl WireSize for () {
    fn wire_bits(&self) -> u64 {
        1
    }
}

/// A routed message: source machine, destination machine, payload.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Sending machine id in `[0, k)`.
    pub src: usize,
    /// Receiving machine id in `[0, k)`.
    pub dst: usize,
    /// The payload.
    pub payload: M,
    /// Wire size in bits, captured at construction.
    pub bits: u64,
}

impl<M: WireSize> Envelope<M> {
    /// Wraps a payload, capturing its wire size.
    pub fn new(src: usize, dst: usize, payload: M) -> Self {
        let bits = payload.wire_bits();
        Envelope {
            src,
            dst,
            payload,
            bits,
        }
    }
}

impl<M> Envelope<M> {
    /// Wraps a payload with an explicitly computed wire size (for payload
    /// types whose encoding depends on context such as the id width
    /// `⌈log₂ n⌉`, which the payload itself cannot know).
    pub fn with_bits(src: usize, dst: usize, payload: M, bits: u64) -> Self {
        Envelope {
            src,
            dst,
            payload,
            bits,
        }
    }

    /// Whether the message stays on its source machine (free in the model:
    /// local computation costs nothing, so a self-addressed message is just
    /// local state).
    pub fn is_local(&self) -> bool {
        self.src == self.dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);
    impl WireSize for Fixed {
        fn wire_bits(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn envelope_captures_wire_size() {
        let e = Envelope::new(0, 1, Fixed(123));
        assert_eq!(e.bits, 123);
        assert!(!e.is_local());
        let l = Envelope::new(2, 2, Fixed(5));
        assert!(l.is_local());
    }
}
