//! Message envelopes with explicit wire sizes.
//!
//! The simulator does not serialize payloads; instead every payload type
//! reports its size in bits through [`WireSize`], using the encodings the
//! paper assumes (ids of `⌈log₂ n⌉` bits, sketches of `polylog(n)` bits).
//! This keeps the hot path allocation-free while making every byte of the
//! round accounting explicit and auditable.
//!
//! Two wire encodings are supported ([`Encoding`]):
//!
//! * **Naive** — every message carries its own type tag and full-width
//!   fields; the charged size is the per-message [`Envelope::bits`] captured
//!   at construction. This is the historical accounting and stays the
//!   bit-for-bit default.
//! * **Varint** — the superstep layer groups each directed link's messages
//!   into per-type *runs* and charges the [`BatchWire`] batch size: one
//!   shared tag per run, delta-sorted varint ids, varint fields. The naive
//!   per-message sum is still accumulated as the oracle counter
//!   [`crate::metrics::CommStats::naive_bits`], so the compression ratio is
//!   auditable on every run.

/// A payload that knows its encoded size in bits.
pub trait WireSize {
    /// The number of bits this payload occupies on a link.
    fn wire_bits(&self) -> u64;
}

/// Which wire encoding the superstep layer charges bandwidth under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Encoding {
    /// Per-message accounting: flat tag + full-width ids per message (the
    /// historical charging, and the oracle for the varint ablation).
    #[default]
    Naive,
    /// Per-link batch accounting: per-type runs share one tag, ids are
    /// delta-sorted varints ([`BatchWire::batch_wire_bits`]).
    Varint,
}

/// The LEB128-style cost of one unsigned value: 8 bits (7 data bits + 1
/// continuation bit) per started 7-bit group, at least one group.
pub fn varint_bits(x: u64) -> u64 {
    8 * u64::from((64 - x.leading_zeros()).div_ceil(7).max(1))
}

/// The cost of a *delta-sorted* varint run: the values are sorted ascending
/// and each is encoded as the gap to its predecessor (the first as-is).
/// Sorting is free — the receiver does not need the original order of a
/// same-type run — and turns clustered id sets into streams of tiny gaps.
pub fn delta_varint_bits(vals: &mut [u64]) -> u64 {
    vals.sort_unstable();
    let mut prev = 0u64;
    let mut bits = 0u64;
    for &v in vals.iter() {
        bits += varint_bits(v - prev);
        prev = v;
    }
    bits
}

/// A payload type whose same-link batches can be charged as one encoded
/// buffer. The default is the naive per-message sum, so plain payloads are
/// unaffected by [`Encoding::Varint`]; types with compressible structure
/// override [`BatchWire::batch_wire_bits`].
pub trait BatchWire: Sized {
    /// Encoded size in bits of one directed link's message batch.
    fn batch_wire_bits(batch: &[&Envelope<Self>]) -> u64 {
        batch.iter().map(|e| e.bits.max(1)).sum()
    }
}

impl BatchWire for u64 {}
impl BatchWire for () {}

impl WireSize for u64 {
    fn wire_bits(&self) -> u64 {
        64
    }
}

impl WireSize for () {
    fn wire_bits(&self) -> u64 {
        1
    }
}

/// A routed message: source machine, destination machine, payload.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Sending machine id in `[0, k)`.
    pub src: usize,
    /// Receiving machine id in `[0, k)`.
    pub dst: usize,
    /// The payload.
    pub payload: M,
    /// Wire size in bits, captured at construction.
    pub bits: u64,
}

impl<M: WireSize> Envelope<M> {
    /// Wraps a payload, capturing its wire size.
    pub fn new(src: usize, dst: usize, payload: M) -> Self {
        let bits = payload.wire_bits();
        Envelope {
            src,
            dst,
            payload,
            bits,
        }
    }
}

impl<M> Envelope<M> {
    /// Wraps a payload with an explicitly computed wire size (for payload
    /// types whose encoding depends on context such as the id width
    /// `⌈log₂ n⌉`, which the payload itself cannot know).
    pub fn with_bits(src: usize, dst: usize, payload: M, bits: u64) -> Self {
        Envelope {
            src,
            dst,
            payload,
            bits,
        }
    }

    /// Whether the message stays on its source machine (free in the model:
    /// local computation costs nothing, so a self-addressed message is just
    /// local state).
    pub fn is_local(&self) -> bool {
        self.src == self.dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);
    impl WireSize for Fixed {
        fn wire_bits(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn envelope_captures_wire_size() {
        let e = Envelope::new(0, 1, Fixed(123));
        assert_eq!(e.bits, 123);
        assert!(!e.is_local());
        let l = Envelope::new(2, 2, Fixed(5));
        assert!(l.is_local());
    }

    #[test]
    fn varint_bits_grow_by_seven_bit_groups() {
        assert_eq!(varint_bits(0), 8);
        assert_eq!(varint_bits(127), 8);
        assert_eq!(varint_bits(128), 16);
        assert_eq!(varint_bits((1 << 14) - 1), 16);
        assert_eq!(varint_bits(1 << 14), 24);
        assert_eq!(varint_bits(u64::MAX), 80);
    }

    #[test]
    fn delta_sorted_runs_beat_full_width_ids() {
        // A clustered id set: deltas are tiny, so the run costs one byte
        // per id after the first.
        let mut ids: Vec<u64> = (1000..1060).collect();
        assert_eq!(delta_varint_bits(&mut ids), 16 + 59 * 8);
        // Order independence: sorting happens inside.
        let mut shuffled = vec![1040u64, 1000, 1059, 1020];
        let mut sorted = vec![1000u64, 1020, 1040, 1059];
        assert_eq!(
            delta_varint_bits(&mut shuffled),
            delta_varint_bits(&mut sorted)
        );
    }

    #[test]
    fn default_batch_wire_is_the_naive_sum() {
        let batch = [
            Envelope::new(0, 1, 7u64),
            Envelope::new(0, 1, 8u64),
            Envelope::new(0, 1, 9u64),
        ];
        let refs: Vec<&Envelope<u64>> = batch.iter().collect();
        assert_eq!(u64::batch_wire_bits(&refs), 3 * 64);
    }
}
