//! Pluggable byte transports: the boundary between the model's accounting
//! and the machinery that actually moves bytes (DESIGN.md §3.12).
//!
//! The three network layers ([`crate::bsp::Bsp`], [`crate::network::Network`],
//! [`crate::link::Link`]) charge rounds and bits analytically; *how* a
//! superstep's bytes travel is delegated to a [`Transport`]:
//!
//! * [`SimTransport`] — the in-process simulator, the accounting oracle.
//!   Frames loop back untouched; the BSP layer short-circuits it entirely so
//!   the simulator path stays byte-for-byte the historical one.
//! * [`ProcTransport`] — a real multi-process backend: one OS worker process
//!   per machine, spawned by the coordinator, exchanging superstep batches
//!   over Unix-domain sockets with TCP-ready framing (length-prefixed,
//!   seq-numbered frames whose payloads are the PR 6 varint batch encoding,
//!   now as actual bytes rather than a pricing fiction). Per-frame acks make
//!   delivery confirmable; a worker that dies mid-window is detected,
//!   respawned, and the window is replayed under a fresh token — the
//!   crash-stop-with-immediate-restart semantics the PR 5
//!   [`crate::fault::CrashEvent`] recovery path assumes.
//!
//! Workers are payload-agnostic relays: frame payloads are opaque bytes
//! (encoded/decoded by [`crate::message::WireCodec`] on the coordinator
//! side), so one worker binary serves every algorithm.
//!
//! ## Window protocol
//!
//! One [`Transport::exchange`] call moves one delivery window (a superstep
//! batch, or one retransmission wave of the PR 5 recovery protocol). The
//! coordinator drives each attempt under a fresh *token*:
//!
//! 1. **Send** — each worker with outbound frames receives
//!    `Send{token, frames}` on its control socket, ships every frame to the
//!    destination worker's mesh socket, awaits a per-frame `Ack`, and
//!    replies `SendDone{token, sent}`.
//! 2. **Collect** — once every sender confirmed, each worker with expected
//!    inbound traffic receives `Collect{token, expect}`, drains exactly that
//!    many matching frames from its inbound buffer, and replies
//!    `Frames{token, frames}`.
//!
//! A failed attempt (worker death, socket error, shortfall) respawns dead
//! workers and replays the window; stale frames from aborted attempts are
//! discarded by token mismatch, so a window is delivered exactly once.

#![warn(clippy::unwrap_used, clippy::expect_used)]
// ^ window-protocol / worker-path panic hygiene (kcheck KC05): a
// panic here kills a worker mid-window instead of failing the
// attempt cleanly. Tests opt back in below.

use crate::message::{put_varint, WireReader};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which backend a [`Transport`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process simulator (the accounting oracle).
    Sim,
    /// Multi-process workers over Unix-domain sockets.
    Proc,
}

/// Which backend a configuration selects. `Copy` so it threads through the
/// per-problem config structs unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TransportSel {
    /// The in-process simulator (default; bit-for-bit the historical path).
    #[default]
    Sim,
    /// One OS process per machine (worker executable resolved via
    /// [`set_worker_exe`], the `KMM_WORKER_EXE` environment variable, or
    /// the current executable, in that order).
    Proc,
}

impl TransportSel {
    /// Parses a CLI selector (`sim` or `proc`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "sim" => Ok(TransportSel::Sim),
            "proc" => Ok(TransportSel::Proc),
            other => Err(format!("unknown transport `{other}` (expected sim|proc)")),
        }
    }

    /// The CLI name of this selector.
    pub fn name(&self) -> &'static str {
        match self {
            TransportSel::Sim => "sim",
            TransportSel::Proc => "proc",
        }
    }
}

/// One length-prefixed, seq-numbered unit of wire traffic: a directed
/// link's encoded superstep batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Sending machine.
    pub src: u32,
    /// Receiving machine.
    pub dst: u32,
    /// Window-attempt token (assigned by the transport; fresh per attempt
    /// so replayed windows dedup stale frames exactly).
    pub token: u64,
    /// Frame index within its window.
    pub seq: u64,
    /// The encoded batch (opaque to the transport).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame awaiting token/seq assignment by the transport.
    pub fn new(src: u32, dst: u32, payload: Vec<u8>) -> Self {
        Frame {
            src,
            dst,
            token: 0,
            seq: 0,
            payload,
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_varint(out, u64::from(self.src));
        put_varint(out, u64::from(self.dst));
        put_varint(out, self.token);
        put_varint(out, self.seq);
        put_varint(out, self.payload.len() as u64);
        out.extend_from_slice(&self.payload);
    }

    fn decode_from(r: &mut WireReader<'_>) -> std::io::Result<Frame> {
        let src = read_field(r, "frame.src")? as u32;
        let dst = read_field(r, "frame.dst")? as u32;
        let token = read_field(r, "frame.token")?;
        let seq = read_field(r, "frame.seq")?;
        let len = read_field(r, "frame.len")? as usize;
        let payload = r
            .bytes(len, "frame.payload")
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
            .to_vec();
        Ok(Frame {
            src,
            dst,
            token,
            seq,
            payload,
        })
    }
}

fn read_field(r: &mut WireReader<'_>, field: &'static str) -> std::io::Result<u64> {
    r.varint(field)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Physical-layer counters: what the transport actually moved, as opposed
/// to what the model charged ([`crate::metrics::CommStats`] is reconstructed
/// from decoded frames; these count the frames themselves).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhysStats {
    /// Delivery windows exchanged ([`Transport::exchange`] calls).
    pub windows: u64,
    /// Window attempts, including replays after failures.
    pub attempts: u64,
    /// Frames handed to workers for shipment.
    pub frames_sent: u64,
    /// Sum of frame payload bytes shipped.
    pub payload_bytes: u64,
    /// Frames collected back from receiving workers.
    pub frames_delivered: u64,
    /// Per-frame mesh acks confirmed by senders.
    pub acks: u64,
    /// Workers that died and were respawned (window replays).
    pub worker_restarts: u64,
}

/// A byte transport for delivery windows. Object-safe so the network layers
/// can hold `Box<dyn Transport>` regardless of payload type.
pub trait Transport: Send {
    /// Which backend this is.
    fn kind(&self) -> TransportKind;
    /// Delivers one window: every frame reaches its destination machine and
    /// comes back to the coordinator, exactly once. Frames are returned in
    /// window-seq order.
    fn exchange(&mut self, frames: Vec<Frame>) -> Vec<Frame>;
    /// Physical-layer counters so far.
    fn phys(&self) -> &PhysStats;
}

/// The in-process backend: frames loop back unchanged. The BSP layer never
/// even encodes under this kind (the simulator is the oracle and must stay
/// byte-identical); the loopback exists so the trait is total and the
/// fine-grained [`crate::network::Network`] can route through it.
#[derive(Debug, Default)]
pub struct SimTransport {
    phys: PhysStats,
}

impl SimTransport {
    /// A fresh loopback.
    pub fn new() -> Self {
        SimTransport::default()
    }
}

impl Transport for SimTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Sim
    }

    fn exchange(&mut self, mut frames: Vec<Frame>) -> Vec<Frame> {
        self.phys.windows += 1;
        self.phys.attempts += 1;
        for (i, f) in frames.iter_mut().enumerate() {
            f.seq = i as u64;
            self.phys.frames_sent += 1;
            self.phys.frames_delivered += 1;
            self.phys.acks += 1;
            self.phys.payload_bytes += f.payload.len() as u64;
        }
        frames
    }

    fn phys(&self) -> &PhysStats {
        &self.phys
    }
}

// ---------------------------------------------------------------------------
// Socket message layer (control + mesh): length-prefixed framing.
// ---------------------------------------------------------------------------

const KIND_HELLO: u8 = 1;
const KIND_SEND: u8 = 2;
const KIND_SEND_DONE: u8 = 3;
const KIND_COLLECT: u8 = 4;
const KIND_FRAMES: u8 = 5;
const KIND_SHUTDOWN: u8 = 6;
const KIND_FRAME: u8 = 7;
const KIND_ACK: u8 = 8;

/// Hard cap on one socket message body; a longer prefix means corruption.
const MAX_BODY: u64 = 1 << 30;

#[derive(Debug)]
enum Msg {
    Hello { machine: u64 },
    Send { token: u64, frames: Vec<Frame> },
    SendDone { token: u64, sent: u64 },
    Collect { token: u64, expect: u64 },
    Frames { token: u64, frames: Vec<Frame> },
    Shutdown,
    Frame(Frame),
    Ack { token: u64, seq: u64 },
}

impl Msg {
    fn token(&self) -> Option<u64> {
        match self {
            Msg::Send { token, .. }
            | Msg::SendDone { token, .. }
            | Msg::Collect { token, .. }
            | Msg::Frames { token, .. }
            | Msg::Ack { token, .. } => Some(*token),
            Msg::Frame(f) => Some(f.token),
            _ => None,
        }
    }
}

fn encode_frames(out: &mut Vec<u8>, frames: &[Frame]) {
    put_varint(out, frames.len() as u64);
    for f in frames {
        f.encode_into(out);
    }
}

fn decode_frames(r: &mut WireReader<'_>) -> std::io::Result<Vec<Frame>> {
    let n = read_field(r, "msg.nframes")?;
    (0..n).map(|_| Frame::decode_from(r)).collect()
}

fn write_msg(stream: &mut UnixStream, msg: &Msg) -> std::io::Result<()> {
    let mut body = Vec::new();
    match msg {
        Msg::Hello { machine } => {
            body.push(KIND_HELLO);
            put_varint(&mut body, *machine);
        }
        Msg::Send { token, frames } => {
            body.push(KIND_SEND);
            put_varint(&mut body, *token);
            encode_frames(&mut body, frames);
        }
        Msg::SendDone { token, sent } => {
            body.push(KIND_SEND_DONE);
            put_varint(&mut body, *token);
            put_varint(&mut body, *sent);
        }
        Msg::Collect { token, expect } => {
            body.push(KIND_COLLECT);
            put_varint(&mut body, *token);
            put_varint(&mut body, *expect);
        }
        Msg::Frames { token, frames } => {
            body.push(KIND_FRAMES);
            put_varint(&mut body, *token);
            encode_frames(&mut body, frames);
        }
        Msg::Shutdown => body.push(KIND_SHUTDOWN),
        Msg::Frame(f) => {
            body.push(KIND_FRAME);
            f.encode_into(&mut body);
        }
        Msg::Ack { token, seq } => {
            body.push(KIND_ACK);
            put_varint(&mut body, *token);
            put_varint(&mut body, *seq);
        }
    }
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(&body)?;
    stream.flush()
}

fn read_msg(stream: &mut UnixStream) -> std::io::Result<Msg> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as u64;
    if len == 0 || len > MAX_BODY {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad message length {len}"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    // The `None` arm is unreachable (len == 0 was rejected above), but a
    // clean protocol error beats a panicking index on this path.
    let Some((&kind, rest)) = body.split_first() else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "empty message body",
        ));
    };
    let mut r = WireReader::new(rest);
    let msg = match kind {
        KIND_HELLO => Msg::Hello {
            machine: read_field(&mut r, "hello.machine")?,
        },
        KIND_SEND => Msg::Send {
            token: read_field(&mut r, "send.token")?,
            frames: decode_frames(&mut r)?,
        },
        KIND_SEND_DONE => Msg::SendDone {
            token: read_field(&mut r, "senddone.token")?,
            sent: read_field(&mut r, "senddone.sent")?,
        },
        KIND_COLLECT => Msg::Collect {
            token: read_field(&mut r, "collect.token")?,
            expect: read_field(&mut r, "collect.expect")?,
        },
        KIND_FRAMES => Msg::Frames {
            token: read_field(&mut r, "frames.token")?,
            frames: decode_frames(&mut r)?,
        },
        KIND_SHUTDOWN => Msg::Shutdown,
        KIND_FRAME => Msg::Frame(Frame::decode_from(&mut r)?),
        KIND_ACK => Msg::Ack {
            token: read_field(&mut r, "ack.token")?,
            seq: read_field(&mut r, "ack.seq")?,
        },
        k => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unknown message kind {k}"),
            ))
        }
    };
    Ok(msg)
}

// ---------------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------------

/// How long a worker waits for one expected inbound frame before reporting
/// a shortfall (the coordinator then replays the window).
const COLLECT_FRAME_TIMEOUT: Duration = Duration::from_millis(2_000);
/// Mesh socket I/O timeout (frame write / ack read).
const MESH_TIMEOUT: Duration = Duration::from_secs(10);
/// Coordinator control-socket I/O timeout.
const CTRL_TIMEOUT: Duration = Duration::from_secs(30);
/// How long the coordinator waits for worker hellos at spawn.
const SPAWN_TIMEOUT: Duration = Duration::from_secs(20);
/// Window replays before the coordinator gives up.
const MAX_WINDOW_ATTEMPTS: u64 = 50;

fn mesh_sock(dir: &Path, machine: usize) -> PathBuf {
    dir.join(format!("m{machine}.sock"))
}

/// The body of one worker process (or thread, in the in-process test mode):
/// binds its mesh socket, connects to the coordinator's control socket, and
/// serves Send/Collect windows until shutdown. Exposed so the CLI's hidden
/// `__transport-worker` subcommand (and thread-mode tests) can run it.
pub fn worker_main(dir: &Path, machine: usize, k: usize) -> std::io::Result<()> {
    let _ = k;
    let sock = mesh_sock(dir, machine);
    let _ = std::fs::remove_file(&sock);
    let listener = UnixListener::bind(&sock)?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<Frame>();
    {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || accept_loop(listener, tx, stop));
    }
    let result = worker_serve(dir, machine, &rx);
    stop.store(true, Ordering::Relaxed);
    let _ = std::fs::remove_file(&sock);
    result
}

fn accept_loop(listener: UnixListener, tx: mpsc::Sender<Frame>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((conn, _)) => {
                let tx = tx.clone();
                std::thread::spawn(move || serve_peer(conn, tx));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

/// One inbound mesh connection: frames in, acks out. The ack is written
/// only after the frame is safely buffered, so a confirmed `SendDone`
/// guarantees every frame is collectable.
fn serve_peer(mut conn: UnixStream, tx: mpsc::Sender<Frame>) {
    let _ = conn.set_read_timeout(None);
    loop {
        match read_msg(&mut conn) {
            Ok(Msg::Frame(f)) => {
                let ack = Msg::Ack {
                    token: f.token,
                    seq: f.seq,
                };
                if tx.send(f).is_err() || write_msg(&mut conn, &ack).is_err() {
                    return;
                }
            }
            _ => return,
        }
    }
}

fn worker_serve(dir: &Path, machine: usize, rx: &mpsc::Receiver<Frame>) -> std::io::Result<()> {
    let mut ctrl = UnixStream::connect(dir.join("ctrl.sock"))?;
    write_msg(
        &mut ctrl,
        &Msg::Hello {
            machine: machine as u64,
        },
    )?;
    let mut peers: Vec<Option<UnixStream>> = Vec::new();
    // Stale frames of an aborted window attempt, kept until a later Collect
    // discards them by token mismatch.
    let mut pending: VecDeque<Frame> = VecDeque::new();
    loop {
        match read_msg(&mut ctrl) {
            Ok(Msg::Send { token, frames }) => {
                let mut sent = 0u64;
                for f in frames {
                    if send_frame(dir, &mut peers, &f) {
                        sent += 1;
                    }
                }
                write_msg(&mut ctrl, &Msg::SendDone { token, sent })?;
            }
            Ok(Msg::Collect { token, expect }) => {
                let mut got = Vec::new();
                pending.retain(|f| {
                    if f.token == token {
                        got.push(f.clone());
                        false
                    } else {
                        true
                    }
                });
                while (got.len() as u64) < expect {
                    match rx.recv_timeout(COLLECT_FRAME_TIMEOUT) {
                        Ok(f) if f.token == token => got.push(f),
                        Ok(f) if f.token > token => pending.push_back(f),
                        Ok(_) => {} // stale attempt: discard
                        Err(_) => break,
                    }
                }
                got.sort_unstable_by_key(|f| f.seq);
                write_msg(&mut ctrl, &Msg::Frames { token, frames: got })?;
            }
            Ok(Msg::Shutdown) | Err(_) => return Ok(()),
            Ok(_) => {}
        }
    }
}

/// Ships one frame to its destination worker and waits for the per-frame
/// ack. A broken cached connection (e.g. the peer died and was respawned)
/// gets one reconnect retry; persistent failure is reported as a shortfall.
fn send_frame(dir: &Path, peers: &mut Vec<Option<UnixStream>>, f: &Frame) -> bool {
    let dst = f.dst as usize;
    if peers.len() <= dst {
        peers.resize_with(dst + 1, || None);
    }
    let Some(slot) = peers.get_mut(dst) else {
        return false; // unreachable: just resized past dst
    };
    for _ in 0..2 {
        if slot.is_none() {
            *slot = UnixStream::connect(mesh_sock(dir, dst))
                .and_then(|s| {
                    s.set_read_timeout(Some(MESH_TIMEOUT))?;
                    s.set_write_timeout(Some(MESH_TIMEOUT))?;
                    Ok(s)
                })
                .ok();
        }
        if let Some(s) = slot.as_mut() {
            if write_msg(s, &Msg::Frame(f.clone())).is_ok() {
                if let Ok(Msg::Ack { token, seq }) = read_msg(s) {
                    if token == f.token && seq == f.seq {
                        return true;
                    }
                }
            }
        }
        *slot = None;
    }
    false
}

// ---------------------------------------------------------------------------
// Coordinator side.
// ---------------------------------------------------------------------------

/// Process-wide counter so concurrent transports get distinct socket dirs.
static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Worker-executable override for embedders that are not the `kmm` binary
/// (integration tests point this at `CARGO_BIN_EXE_kmm`).
static WORKER_EXE: std::sync::Mutex<Option<PathBuf>> = std::sync::Mutex::new(None);

/// Overrides the worker executable [`ProcTransport::processes`] spawns.
/// Resolution order: this override, then `KMM_WORKER_EXE`, then the current
/// executable (which works for the `kmm` CLI itself).
pub fn set_worker_exe(path: PathBuf) {
    *WORKER_EXE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(path);
}

fn resolve_worker_exe() -> std::io::Result<PathBuf> {
    let exe_override = WORKER_EXE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    if let Some(p) = exe_override {
        return Ok(p);
    }
    if let Some(p) = std::env::var_os("KMM_WORKER_EXE") {
        return Ok(PathBuf::from(p));
    }
    std::env::current_exe()
}

enum WorkerHandle {
    Process(std::process::Child),
    Thread,
}

struct WorkerSlot {
    ctrl: UnixStream,
    handle: WorkerHandle,
    /// OS pid for process workers (teardown assertions).
    pid: Option<u32>,
    /// Set when a control-socket operation failed this attempt.
    suspect: bool,
}

enum SpawnMode {
    Processes(PathBuf),
    Threads,
}

/// The multi-process backend coordinator: spawns one worker per machine,
/// drives the window protocol, respawns dead workers, and reaps every
/// child on drop (even when dropped by a panicking test).
pub struct ProcTransport {
    k: usize,
    dir: PathBuf,
    listener: UnixListener,
    workers: Vec<WorkerSlot>,
    mode: SpawnMode,
    next_token: u64,
    phys: PhysStats,
}

impl ProcTransport {
    /// Spawns `k` worker processes running the resolved worker executable
    /// (see [`set_worker_exe`]).
    pub fn processes(k: usize) -> std::io::Result<Self> {
        let exe = resolve_worker_exe()?;
        Self::with_worker_exe(k, exe)
    }

    /// Spawns `k` worker processes running `exe __transport-worker ...`.
    pub fn with_worker_exe(k: usize, exe: PathBuf) -> std::io::Result<Self> {
        Self::spawn(k, SpawnMode::Processes(exe))
    }

    /// Runs the `k` workers as in-process threads over the same sockets and
    /// protocol — full wire coverage without a worker binary (unit tests).
    pub fn threads(k: usize) -> std::io::Result<Self> {
        Self::spawn(k, SpawnMode::Threads)
    }

    fn spawn(k: usize, mode: SpawnMode) -> std::io::Result<Self> {
        assert!(k >= 2, "the model requires k >= 2");
        let dir = std::env::temp_dir().join(format!(
            "kmm-transport-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        let listener = UnixListener::bind(dir.join("ctrl.sock"))?;
        listener.set_nonblocking(true)?;
        let mut t = ProcTransport {
            k,
            dir,
            listener,
            workers: Vec::new(),
            mode,
            next_token: 1,
            phys: PhysStats::default(),
        };
        for m in 0..k {
            let handle = t.launch_worker(m)?;
            let pid = match &handle {
                WorkerHandle::Process(c) => Some(c.id()),
                WorkerHandle::Thread => None,
            };
            t.workers.push(WorkerSlot {
                // Placeholder stream; replaced once the worker's hello
                // arrives in `await_hellos`.
                ctrl: UnixStream::pair()?.0,
                handle,
                pid,
                suspect: false,
            });
        }
        let pending: Vec<usize> = (0..k).collect();
        t.await_hellos(&pending)?;
        Ok(t)
    }

    fn launch_worker(&self, machine: usize) -> std::io::Result<WorkerHandle> {
        match &self.mode {
            SpawnMode::Processes(exe) => {
                let child = std::process::Command::new(exe)
                    .arg("__transport-worker")
                    .arg(&self.dir)
                    .arg(machine.to_string())
                    .arg(self.k.to_string())
                    .stdin(std::process::Stdio::null())
                    .spawn()?;
                Ok(WorkerHandle::Process(child))
            }
            SpawnMode::Threads => {
                let dir = self.dir.clone();
                let k = self.k;
                std::thread::spawn(move || {
                    let _ = worker_main(&dir, machine, k);
                });
                Ok(WorkerHandle::Thread)
            }
        }
    }

    /// The coordinator's slot for machine `m`. Every caller passes an
    /// index that is `< k` by construction (loops over `0..k`, or frame
    /// endpoints produced by our own windowing) and `workers.len() == k`
    /// from construction onward — this is the single audited index of the
    /// window protocol (kcheck KC05, entry in `kcheck.allow`).
    fn slot(&mut self, m: usize) -> &mut WorkerSlot {
        &mut self.workers[m]
    }

    /// Accepts control connections until every machine in `pending` has
    /// said hello, installing the fresh control streams.
    fn await_hellos(&mut self, pending: &[usize]) -> std::io::Result<()> {
        let deadline = Instant::now() + SPAWN_TIMEOUT;
        let mut missing: Vec<usize> = pending.to_vec();
        while !missing.is_empty() {
            match self.listener.accept() {
                Ok((mut conn, _)) => {
                    conn.set_read_timeout(Some(CTRL_TIMEOUT))?;
                    conn.set_write_timeout(Some(CTRL_TIMEOUT))?;
                    match read_msg(&mut conn)? {
                        Msg::Hello { machine } => {
                            let m = machine as usize;
                            if m >= self.k {
                                return Err(std::io::Error::new(
                                    std::io::ErrorKind::InvalidData,
                                    format!("hello from machine {m} out of range"),
                                ));
                            }
                            let slot = self.slot(m);
                            slot.ctrl = conn;
                            slot.suspect = false;
                            missing.retain(|&x| x != m);
                        }
                        other => {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                format!("expected hello, got {other:?}"),
                            ))
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            format!("workers {missing:?} never said hello"),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// OS pids of process-mode workers (teardown assertions in tests).
    pub fn worker_pids(&self) -> Vec<u32> {
        self.workers.iter().filter_map(|w| w.pid).collect()
    }

    /// Reads control replies from worker `m`, skipping stale ones (their
    /// token predates the current attempt).
    fn read_reply(&mut self, m: usize, token: u64) -> std::io::Result<Msg> {
        loop {
            let msg = read_msg(&mut self.slot(m).ctrl)?;
            match msg.token() {
                Some(t) if t < token => {} // stale; keep reading
                _ => return Ok(msg),
            }
        }
    }

    /// One window attempt. Returns the collected frames, or `None` on any
    /// failure (the caller respawns dead workers and replays).
    fn attempt(&mut self, frames: &[Frame], token: u64) -> Option<Vec<Frame>> {
        let mut outbound: Vec<Vec<Frame>> = vec![Vec::new(); self.k];
        let mut expect = vec![0u64; self.k];
        for (i, f) in frames.iter().enumerate() {
            let mut f = f.clone();
            f.token = token;
            f.seq = i as u64;
            // Frame endpoints come from our own windowing, so src/dst < k;
            // a malformed frame is dropped as a failed attempt, not a panic.
            match (
                expect.get_mut(f.dst as usize),
                outbound.get_mut(f.src as usize),
            ) {
                (Some(e), Some(o)) => {
                    *e += 1;
                    o.push(f);
                }
                _ => return None,
            }
        }
        // `(machine, frames-to-send)` / `(machine, frames-expected)` pairs:
        // consuming the per-machine vectors here is what lets the two phase
        // loops below run without a single panicking index.
        let senders: Vec<(usize, Vec<Frame>)> = outbound
            .into_iter()
            .enumerate()
            .filter(|(_, fs)| !fs.is_empty())
            .collect();
        let receivers: Vec<(usize, u64)> = expect
            .into_iter()
            .enumerate()
            .filter(|&(_, e)| e > 0)
            .collect();
        let mut ok = true;
        // Phase A: fan the Send commands out, then gather every SendDone.
        let mut awaiting = Vec::with_capacity(senders.len());
        for (m, fs) in senders {
            let want = fs.len() as u64;
            let msg = Msg::Send { token, frames: fs };
            if write_msg(&mut self.slot(m).ctrl, &msg).is_err() {
                self.slot(m).suspect = true;
                ok = false;
            }
            awaiting.push((m, want));
        }
        for (m, want) in awaiting {
            if self.slot(m).suspect {
                continue;
            }
            match self.read_reply(m, token) {
                Ok(Msg::SendDone { token: t, sent }) if t == token => {
                    self.phys.acks += sent;
                    if sent != want {
                        ok = false; // a peer is unreachable; replay
                    }
                }
                _ => {
                    self.slot(m).suspect = true;
                    ok = false;
                }
            }
        }
        if !ok {
            return None;
        }
        // Phase B: every frame is buffered at its destination; collect.
        for &(m, e) in &receivers {
            let msg = Msg::Collect { token, expect: e };
            if write_msg(&mut self.slot(m).ctrl, &msg).is_err() {
                self.slot(m).suspect = true;
                ok = false;
            }
        }
        let mut collected = Vec::with_capacity(frames.len());
        for &(m, e) in &receivers {
            if self.slot(m).suspect {
                continue;
            }
            match self.read_reply(m, token) {
                Ok(Msg::Frames {
                    token: t,
                    frames: fs,
                }) if t == token => {
                    if fs.len() as u64 != e {
                        ok = false;
                    }
                    collected.extend(fs);
                }
                _ => {
                    self.slot(m).suspect = true;
                    ok = false;
                }
            }
        }
        if !ok || collected.len() != frames.len() {
            return None;
        }
        collected.sort_unstable_by_key(|f| f.seq);
        Some(collected)
    }

    /// Respawns every worker that died or whose control socket failed, and
    /// waits for the replacements' hellos. This is the [`crate::fault::CrashEvent`]
    /// story made physical: crash-stop with immediate restart, after which
    /// the in-flight window is replayed from the coordinator's send log.
    fn recover(&mut self) -> std::io::Result<()> {
        let mut respawned = Vec::new();
        for m in 0..self.k {
            let sock = mesh_sock(&self.dir, m);
            let slot = self.slot(m);
            let dead = match &mut slot.handle {
                WorkerHandle::Process(child) => child.try_wait().map_or(true, |s| s.is_some()),
                WorkerHandle::Thread => false,
            };
            if !(dead || slot.suspect) {
                continue;
            }
            if let WorkerHandle::Process(child) = &mut slot.handle {
                let _ = child.kill();
                let _ = child.wait();
            }
            let _ = std::fs::remove_file(sock);
            let handle = self.launch_worker(m)?;
            let slot = self.slot(m);
            slot.pid = match &handle {
                WorkerHandle::Process(c) => Some(c.id()),
                WorkerHandle::Thread => slot.pid,
            };
            slot.handle = handle;
            slot.suspect = false;
            self.phys.worker_restarts += 1;
            respawned.push(m);
        }
        if !respawned.is_empty() {
            self.await_hellos(&respawned)?;
        }
        Ok(())
    }
}

impl Transport for ProcTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Proc
    }

    fn exchange(&mut self, frames: Vec<Frame>) -> Vec<Frame> {
        self.phys.windows += 1;
        if frames.is_empty() {
            return frames;
        }
        for attempt in 0..MAX_WINDOW_ATTEMPTS {
            self.phys.attempts += 1;
            let token = self.next_token;
            self.next_token += 1;
            if let Some(got) = self.attempt(&frames, token) {
                self.phys.frames_sent += frames.len() as u64;
                self.phys.frames_delivered += got.len() as u64;
                self.phys.payload_bytes += got.iter().map(|f| f.payload.len() as u64).sum::<u64>();
                return got;
            }
            if let Err(e) = self.recover() {
                panic!("transport recovery failed (attempt {attempt}): {e}");
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("delivery window failed after {MAX_WINDOW_ATTEMPTS} attempts");
    }

    fn phys(&self) -> &PhysStats {
        &self.phys
    }
}

impl Drop for ProcTransport {
    fn drop(&mut self) {
        // Best-effort graceful shutdown, then reap unconditionally: no
        // orphaned worker survives a panicking test.
        for w in &mut self.workers {
            let _ = write_msg(&mut w.ctrl, &Msg::Shutdown);
        }
        let deadline = Instant::now() + Duration::from_millis(500);
        for w in &mut self.workers {
            if let WorkerHandle::Process(child) = &mut w.handle {
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
            }
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// A transport plus the monomorphized [`crate::message::WireCodec`] hooks
/// for one payload type, captured at install time. Keeping the codec as fn
/// pointers means the network layers' hot entry points need no `WireCodec`
/// bound — payload types that never leave the simulator are untouched.
pub(crate) struct CodecBridge<M> {
    pub(crate) transport: Box<dyn Transport>,
    pub(crate) enc: fn(&M, &mut Vec<u8>),
    pub(crate) dec: fn(&mut WireReader<'_>) -> Result<M, crate::message::WireError>,
    /// `worker_restarts` already folded into the layer's crash counter.
    pub(crate) restarts_seen: u64,
}

impl<M: crate::message::WireCodec> CodecBridge<M> {
    pub(crate) fn new(transport: Box<dyn Transport>) -> Self {
        CodecBridge {
            transport,
            enc: M::encode,
            dec: M::decode,
            restarts_seen: 0,
        }
    }
}

/// Builds the transport a [`TransportSel`] names (`k` workers for the
/// process backend).
pub fn make_transport(sel: TransportSel, k: usize) -> Box<dyn Transport> {
    match sel {
        TransportSel::Sim => Box::new(SimTransport::new()),
        TransportSel::Proc => Box::new(
            ProcTransport::processes(k)
                .unwrap_or_else(|e| panic!("spawning {k} transport workers: {e}")),
        ),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn frame(src: u32, dst: u32, bytes: &[u8]) -> Frame {
        Frame::new(src, dst, bytes.to_vec())
    }

    #[test]
    fn frame_encoding_round_trips() {
        let f = Frame {
            src: 3,
            dst: 1,
            token: 900,
            seq: 41,
            payload: vec![1, 2, 3, 0xff],
        };
        let mut buf = Vec::new();
        f.encode_into(&mut buf);
        let mut r = WireReader::new(&buf);
        assert_eq!(Frame::decode_from(&mut r).unwrap(), f);
        assert!(r.is_empty());
    }

    #[test]
    fn sim_transport_loops_back_and_counts() {
        let mut t = SimTransport::new();
        let out = t.exchange(vec![frame(0, 1, b"abc"), frame(1, 0, b"d")]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].payload, b"abc");
        assert_eq!(t.phys().frames_sent, 2);
        assert_eq!(t.phys().payload_bytes, 4);
        assert_eq!(t.kind(), TransportKind::Sim);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "real Unix-domain sockets; outside Miri's syscall model"
    )]
    fn thread_workers_deliver_a_window_over_real_sockets() {
        let mut t = ProcTransport::threads(3).expect("spawn");
        let frames = vec![
            frame(0, 1, b"zero to one"),
            frame(0, 2, b"zero to two"),
            frame(2, 1, b"two to one"),
            frame(1, 0, b"one to zero"),
        ];
        let got = t.exchange(frames.clone());
        assert_eq!(got.len(), 4);
        // Seq order is window order, payloads survive the wire verbatim.
        for (i, (sent, recv)) in frames.iter().zip(&got).enumerate() {
            assert_eq!(recv.seq, i as u64);
            assert_eq!((recv.src, recv.dst), (sent.src, sent.dst));
            assert_eq!(recv.payload, sent.payload);
        }
        assert_eq!(t.phys().frames_sent, 4);
        assert_eq!(t.phys().frames_delivered, 4);
        assert_eq!(t.phys().acks, 4);
        assert_eq!(t.phys().worker_restarts, 0);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "real Unix-domain sockets; outside Miri's syscall model"
    )]
    fn consecutive_windows_keep_their_frames_apart() {
        let mut t = ProcTransport::threads(2).expect("spawn");
        for round in 0..5u8 {
            let body = vec![round; 1 + round as usize];
            let got = t.exchange(vec![frame(0, 1, &body), frame(1, 0, &body)]);
            assert_eq!(got.len(), 2);
            assert!(got.iter().all(|f| f.payload == body), "round {round}");
        }
        assert_eq!(t.phys().windows, 5);
        assert_eq!(t.phys().attempts, 5, "no replays on a healthy mesh");
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "real Unix-domain sockets; outside Miri's syscall model"
    )]
    fn empty_windows_are_free() {
        let mut t = ProcTransport::threads(2).expect("spawn");
        assert!(t.exchange(Vec::new()).is_empty());
        assert_eq!(t.phys().attempts, 0);
    }

    #[test]
    fn transport_sel_parses_cli_names() {
        assert_eq!(TransportSel::parse("sim").unwrap(), TransportSel::Sim);
        assert_eq!(TransportSel::parse("proc").unwrap(), TransportSel::Proc);
        assert!(TransportSel::parse("tcp").is_err());
        assert_eq!(TransportSel::Proc.name(), "proc");
        assert_eq!(TransportSel::default(), TransportSel::Sim);
    }

    #[cfg(not(miri))] // proptest machinery is far too slow under the interpreter
    mod prop_tests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Frames with arbitrary payload bytes, tokens and sequence
            /// numbers survive encode→decode exactly and consume the whole
            /// buffer — the framing layer under every superstep window.
            #[test]
            fn frames_round_trip_random_contents(
                src in 0u32..64,
                dst in 0u32..64,
                token in 0u64..u64::MAX,
                seq in 0u64..u64::MAX,
                payload in prop::collection::vec(0u8..=255u8, 0..300),
            ) {
                let f = Frame { src, dst, token, seq, payload };
                let mut buf = Vec::new();
                f.encode_into(&mut buf);
                let mut r = WireReader::new(&buf);
                let back = Frame::decode_from(&mut r).expect("decode");
                prop_assert_eq!(back, f);
                prop_assert!(r.is_empty());
            }
        }
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "real Unix-domain sockets; outside Miri's syscall model"
    )]
    fn large_payloads_survive_framing() {
        let mut t = ProcTransport::threads(2).expect("spawn");
        let big: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let got = t.exchange(vec![frame(1, 0, &big)]);
        assert_eq!(got[0].payload, big);
    }
}
