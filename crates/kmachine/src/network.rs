//! Fine-grained network: per-round stepping over a complete topology.

#![warn(clippy::unwrap_used, clippy::expect_used)]
// ^ window-protocol / worker-path panic hygiene (kcheck KC05): a
// panic here kills a worker mid-window instead of failing the
// attempt cleanly. Tests opt back in below.

use crate::bandwidth::{Bandwidth, CostModel};
use crate::fault::FaultPlan;
use crate::link::{Link, LinkFault};
use crate::message::{put_varint, Encoding, Envelope, WireCodec, WireReader};
use crate::metrics::CommStats;
use crate::transport::{CodecBridge, Frame, PhysStats, Transport, TransportKind};

/// Configuration of a k-machine network.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Number of machines `k ≥ 2`.
    pub k: usize,
    /// Per-directed-link bandwidth policy.
    pub bandwidth: Bandwidth,
    /// Instance size `n` (resolves polylog bandwidth).
    pub n: usize,
    /// Which §1.1 restriction the BSP layer charges rounds under. The
    /// fine-grained [`Network`] stepper always transmits per link.
    pub cost_model: CostModel,
    /// Which wire encoding the BSP layer charges bandwidth under. The
    /// fine-grained [`Network`] stepper always charges per message (it
    /// transmits messages one at a time, so there is no batch to encode);
    /// only [`crate::bsp::Bsp`] supersteps batch-encode.
    pub encoding: Encoding,
}

impl NetworkConfig {
    /// A standard per-link configuration.
    pub fn new(k: usize, bandwidth: Bandwidth, n: usize) -> Self {
        NetworkConfig {
            k,
            bandwidth,
            n,
            cost_model: CostModel::PerLink,
            encoding: Encoding::Naive,
        }
    }

    /// The resolved per-link bits-per-round budget `W`.
    pub fn link_bits(&self) -> u64 {
        self.bandwidth.bits_per_round(self.n)
    }

    /// Number of directed links in the complete topology.
    pub fn directed_links(&self) -> u64 {
        (self.k as u64) * (self.k as u64 - 1)
    }
}

/// A complete network of `k` machines with per-round transmission.
pub struct Network<M> {
    cfg: NetworkConfig,
    w: u64,
    /// Directed link `(i, j)`, `i != j`, stored at `i * k + j`.
    links: Vec<Link<M>>,
    stats: CommStats,
    round: u64,
    /// Installed fault plan (crash events are keyed by *round* here), plus
    /// a monotone per-message decision counter.
    faults: Option<FaultPlan>,
    fault_seq: u64,
    /// Installed byte transport, if any (see [`Network::set_transport`]).
    bridge: Option<CodecBridge<M>>,
}

impl<M> Network<M> {
    /// Creates an idle network.
    pub fn new(cfg: NetworkConfig) -> Self {
        assert!(cfg.k >= 2, "the model requires k >= 2");
        let links = (0..cfg.k * cfg.k).map(|_| Link::default()).collect();
        Network {
            w: cfg.link_bits(),
            links,
            stats: CommStats::new(cfg.k),
            round: 0,
            faults: None,
            fault_seq: 0,
            bridge: None,
            cfg,
        }
    }

    /// Installs a byte transport (DESIGN.md §3.12). With a
    /// [`TransportKind::Proc`] transport every enqueued message's bytes
    /// physically cross the worker mesh as a single-frame window at
    /// [`Network::send`] time (the fine-grained stepper models per-round
    /// *timing*, so the byte motion happens at enqueue and the decoded
    /// arrival is what enters the link queue). A sim transport (or none)
    /// keeps the historical in-process path untouched.
    pub fn set_transport(&mut self, transport: Box<dyn Transport>)
    where
        M: WireCodec,
    {
        self.bridge = Some(CodecBridge::new(transport));
    }

    /// The installed transport's physical-layer counters, if any.
    pub fn phys_stats(&self) -> Option<&PhysStats> {
        self.bridge.as_ref().map(|b| b.transport.phys())
    }

    /// Installs a deterministic [`FaultPlan`] applied per transmitted
    /// message in [`Network::step`] (through [`Link::transmit_with`]).
    /// Unlike the [`crate::bsp::Bsp`] path there is no recovery protocol
    /// here: drops are final, duplicates arrive twice, delayed messages
    /// re-queue for a fresh transmission, and a [`crate::fault::CrashEvent`]
    /// at round `r` discards everything its machine's links deliver that
    /// round. The fine-grained network is the lab for the fault decisions
    /// themselves; `delay` must stay below 1 or [`Network::drain`] could
    /// never finish.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        assert!(plan.delay < 1.0, "delay=1 re-queues forever on a link");
        for c in &plan.crashes {
            assert!(
                c.machine < self.cfg.k,
                "crash event machine {} out of range (k = {})",
                c.machine,
                self.cfg.k
            );
        }
        self.faults = Some(plan);
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Enqueues a message. Local (self-addressed) messages are delivered
    /// immediately by the caller and never touch a link; passing one here
    /// is a bug.
    pub fn send(&mut self, env: Envelope<M>) {
        assert!(
            env.src < self.cfg.k && env.dst < self.cfg.k,
            "bad machine id"
        );
        assert!(!env.is_local(), "local messages do not use links");
        let env = self.through_transport(env);
        self.stats.messages += 1;
        self.stats.total_bits += env.bits;
        self.stats.naive_bits += env.bits;
        self.stats.sent_bits[env.src] += env.bits;
        self.stats.recv_bits[env.dst] += env.bits;
        let idx = env.src * self.cfg.k + env.dst;
        self.links[idx].push(env);
    }

    /// Round-trips one envelope through the installed process transport
    /// (identity otherwise): what enters the link queue is what physically
    /// arrived at the destination worker.
    fn through_transport(&mut self, env: Envelope<M>) -> Envelope<M> {
        let Some(bridge) = self.bridge.as_mut() else {
            return env;
        };
        if bridge.transport.kind() != TransportKind::Proc {
            return env;
        }
        let mut payload = Vec::new();
        put_varint(&mut payload, env.bits);
        (bridge.enc)(&env.payload, &mut payload);
        let frames =
            bridge
                .transport
                .exchange(vec![Frame::new(env.src as u32, env.dst as u32, payload)]);
        assert_eq!(frames.len(), 1, "single-frame window must round-trip");
        let f = &frames[0];
        let mut r = WireReader::new(&f.payload);
        let (bits, payload) = (|| {
            let bits = r.varint("msg.bits")?;
            let payload = (bridge.dec)(&mut r)?;
            Ok::<_, crate::message::WireError>((bits, payload))
        })()
        .unwrap_or_else(|e| panic!("transport frame {}→{}: {e}", f.src, f.dst));
        let restarts = bridge.transport.phys().worker_restarts;
        self.stats.machine_crashes += restarts - bridge.restarts_seen;
        bridge.restarts_seen = restarts;
        Envelope::with_bits(f.src as usize, f.dst as usize, payload, bits)
    }

    /// Advances one synchronous round: every directed link transmits up to
    /// `W` bits. Returns all messages delivered this round (after applying
    /// the installed fault plan, if any).
    pub fn step(&mut self) -> Vec<Envelope<M>>
    where
        M: Clone,
    {
        let step_index = self.round;
        self.round += 1;
        self.stats.rounds += 1;
        let mut delivered = Vec::new();
        match self.faults.take() {
            None => {
                for l in &mut self.links {
                    delivered.extend(l.transmit(self.w));
                }
            }
            Some(plan) => {
                let crashed = plan.crashes_at(step_index);
                for _ in &crashed {
                    self.stats.machine_crashes += 1;
                    self.stats.faults_injected += 1;
                }
                let w = self.w;
                let stats = &mut self.stats;
                let fault_seq = &mut self.fault_seq;
                for l in &mut self.links {
                    delivered.extend(l.transmit_with(w, |env| {
                        let seq = *fault_seq;
                        *fault_seq += 1;
                        if crashed.binary_search(&env.src).is_ok()
                            || crashed.binary_search(&env.dst).is_ok()
                        {
                            // The crash event is the counted fault; its
                            // machine's in-flight traffic is gone.
                            return LinkFault::Drop;
                        }
                        if plan.drops(step_index, 0, seq) {
                            stats.faults_injected += 1;
                            return LinkFault::Drop;
                        }
                        if plan.delays(step_index, seq) {
                            stats.faults_injected += 1;
                            return LinkFault::Delay;
                        }
                        if plan.duplicates(step_index, seq) {
                            stats.faults_injected += 1;
                            stats.retransmit_bits += env.bits.max(1);
                            return LinkFault::Dup;
                        }
                        LinkFault::None
                    }));
                }
                // Reorder: flagged messages drift to the back of this
                // round's delivery batch (stable partition).
                let mut scrambled = Vec::new();
                let mut kept = Vec::with_capacity(delivered.len());
                for (i, env) in delivered.into_iter().enumerate() {
                    if plan.reorders(step_index, i as u64) {
                        self.stats.faults_injected += 1;
                        scrambled.push(env);
                    } else {
                        kept.push(env);
                    }
                }
                kept.extend(scrambled);
                delivered = kept;
                self.faults = Some(plan);
            }
        }
        delivered
    }

    /// Steps until all queues drain; returns everything delivered.
    pub fn drain(&mut self) -> Vec<Envelope<M>>
    where
        M: Clone,
    {
        let mut out = Vec::new();
        while !self.idle() {
            out.extend(self.step());
        }
        out
    }

    /// Whether all link queues are empty.
    pub fn idle(&self) -> bool {
        self.links.iter().all(super::link::Link::is_empty)
    }

    /// The current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Communication statistics so far.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::message::WireSize;

    #[derive(Clone, Debug)]
    struct B(u64);
    impl WireSize for B {
        fn wire_bits(&self) -> u64 {
            self.0
        }
    }

    fn cfg(k: usize, w: u64) -> NetworkConfig {
        NetworkConfig::new(k, Bandwidth::Bits(w), 1024)
    }

    #[test]
    fn drain_time_matches_max_link_load() {
        let mut net: Network<B> = Network::new(cfg(4, 10));
        // Link (0,1): 35 bits -> 4 rounds. Link (2,3): 10 bits -> 1 round.
        net.send(Envelope::new(0, 1, B(20)));
        net.send(Envelope::new(0, 1, B(15)));
        net.send(Envelope::new(2, 3, B(10)));
        let out = net.drain();
        assert_eq!(out.len(), 3);
        assert_eq!(net.round(), 4);
    }

    #[test]
    fn parallel_links_do_not_interfere() {
        let k = 6;
        let mut net: Network<B> = Network::new(cfg(k, 8));
        // Every ordered pair sends one 8-bit message: one round suffices.
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    net.send(Envelope::new(i, j, B(8)));
                }
            }
        }
        let out = net.drain();
        assert_eq!(out.len(), k * (k - 1));
        assert_eq!(net.round(), 1);
    }

    #[test]
    fn stats_track_bits_and_machines() {
        let mut net: Network<B> = Network::new(cfg(3, 100));
        net.send(Envelope::new(0, 1, B(40)));
        net.send(Envelope::new(0, 2, B(60)));
        net.send(Envelope::new(1, 0, B(5)));
        net.drain();
        let s = net.stats();
        assert_eq!(s.messages, 3);
        assert_eq!(s.total_bits, 105);
        assert_eq!(s.sent_bits, vec![100, 5, 0]);
        assert_eq!(s.recv_bits, vec![5, 40, 60]);
    }

    #[test]
    fn installed_faults_thin_and_duplicate_the_delivery() {
        use crate::fault::FaultPlan;
        let send_all = |net: &mut Network<B>| {
            for i in 0..200u64 {
                net.send(Envelope::new(
                    (i % 2) as usize,
                    ((i + 1) % 2) as usize,
                    B(8),
                ));
            }
        };
        let mut clean: Network<B> = Network::new(cfg(2, 1 << 16));
        send_all(&mut clean);
        let clean_out = clean.drain();
        let mut faulty: Network<B> = Network::new(cfg(2, 1 << 16));
        faulty.install_faults(FaultPlan::new(3).with_drop(0.3).with_dup(0.2));
        send_all(&mut faulty);
        let faulty_out = faulty.drain();
        let s = faulty.stats();
        assert!(s.faults_injected > 0, "the plan must fire");
        assert!(s.retransmit_bits > 0, "duplicates are counted traffic");
        assert_ne!(
            faulty_out.len(),
            clean_out.len(),
            "drops and dups must change the delivered count"
        );
    }

    #[test]
    fn delayed_messages_arrive_in_a_later_round() {
        use crate::fault::FaultPlan;
        let mut net: Network<B> = Network::new(cfg(2, 100));
        net.install_faults(FaultPlan::new(1).with_delay(0.9));
        for _ in 0..30 {
            net.send(Envelope::new(0, 1, B(1)));
        }
        net.drain();
        assert!(
            net.round() > 1,
            "w.h.p. some message is re-queued past round 1 (took {})",
            net.round()
        );
        assert!(net.stats().faults_injected > 0);
    }

    #[test]
    fn crash_round_discards_the_machines_inflight_traffic() {
        use crate::fault::FaultPlan;
        let mut net: Network<B> = Network::new(cfg(3, 10));
        // Machine 2 crashes at round 0: its arrivals that round are lost.
        net.install_faults(FaultPlan::new(1).with_crash(2, 0));
        net.send(Envelope::new(0, 2, B(10)));
        net.send(Envelope::new(0, 1, B(10)));
        let out = net.drain();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, 1);
        assert_eq!(net.stats().machine_crashes, 1);
    }

    #[test]
    #[should_panic(expected = "local messages")]
    fn local_send_is_rejected() {
        let mut net: Network<B> = Network::new(cfg(2, 10));
        net.send(Envelope::new(1, 1, B(1)));
    }
}
