//! Fine-grained network: per-round stepping over a complete topology.

use crate::bandwidth::{Bandwidth, CostModel};
use crate::link::Link;
use crate::message::Envelope;
use crate::metrics::CommStats;

/// Configuration of a k-machine network.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Number of machines `k ≥ 2`.
    pub k: usize,
    /// Per-directed-link bandwidth policy.
    pub bandwidth: Bandwidth,
    /// Instance size `n` (resolves polylog bandwidth).
    pub n: usize,
    /// Which §1.1 restriction the BSP layer charges rounds under. The
    /// fine-grained [`Network`] stepper always transmits per link.
    pub cost_model: CostModel,
}

impl NetworkConfig {
    /// A standard per-link configuration.
    pub fn new(k: usize, bandwidth: Bandwidth, n: usize) -> Self {
        NetworkConfig {
            k,
            bandwidth,
            n,
            cost_model: CostModel::PerLink,
        }
    }

    /// The resolved per-link bits-per-round budget `W`.
    pub fn link_bits(&self) -> u64 {
        self.bandwidth.bits_per_round(self.n)
    }

    /// Number of directed links in the complete topology.
    pub fn directed_links(&self) -> u64 {
        (self.k as u64) * (self.k as u64 - 1)
    }
}

/// A complete network of `k` machines with per-round transmission.
pub struct Network<M> {
    cfg: NetworkConfig,
    w: u64,
    /// Directed link `(i, j)`, `i != j`, stored at `i * k + j`.
    links: Vec<Link<M>>,
    stats: CommStats,
    round: u64,
}

impl<M> Network<M> {
    /// Creates an idle network.
    pub fn new(cfg: NetworkConfig) -> Self {
        assert!(cfg.k >= 2, "the model requires k >= 2");
        let links = (0..cfg.k * cfg.k).map(|_| Link::default()).collect();
        Network {
            w: cfg.link_bits(),
            links,
            stats: CommStats::new(cfg.k),
            round: 0,
            cfg,
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Enqueues a message. Local (self-addressed) messages are delivered
    /// immediately by the caller and never touch a link; passing one here
    /// is a bug.
    pub fn send(&mut self, env: Envelope<M>) {
        assert!(
            env.src < self.cfg.k && env.dst < self.cfg.k,
            "bad machine id"
        );
        assert!(!env.is_local(), "local messages do not use links");
        self.stats.messages += 1;
        self.stats.total_bits += env.bits;
        self.stats.sent_bits[env.src] += env.bits;
        self.stats.recv_bits[env.dst] += env.bits;
        let idx = env.src * self.cfg.k + env.dst;
        self.links[idx].push(env);
    }

    /// Advances one synchronous round: every directed link transmits up to
    /// `W` bits. Returns all messages delivered this round.
    pub fn step(&mut self) -> Vec<Envelope<M>> {
        self.round += 1;
        self.stats.rounds += 1;
        let mut delivered = Vec::new();
        for l in &mut self.links {
            delivered.extend(l.transmit(self.w));
        }
        delivered
    }

    /// Steps until all queues drain; returns everything delivered.
    pub fn drain(&mut self) -> Vec<Envelope<M>> {
        let mut out = Vec::new();
        while !self.idle() {
            out.extend(self.step());
        }
        out
    }

    /// Whether all link queues are empty.
    pub fn idle(&self) -> bool {
        self.links.iter().all(|l| l.is_empty())
    }

    /// The current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Communication statistics so far.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::WireSize;

    #[derive(Clone, Debug)]
    struct B(u64);
    impl WireSize for B {
        fn wire_bits(&self) -> u64 {
            self.0
        }
    }

    fn cfg(k: usize, w: u64) -> NetworkConfig {
        NetworkConfig::new(k, Bandwidth::Bits(w), 1024)
    }

    #[test]
    fn drain_time_matches_max_link_load() {
        let mut net: Network<B> = Network::new(cfg(4, 10));
        // Link (0,1): 35 bits -> 4 rounds. Link (2,3): 10 bits -> 1 round.
        net.send(Envelope::new(0, 1, B(20)));
        net.send(Envelope::new(0, 1, B(15)));
        net.send(Envelope::new(2, 3, B(10)));
        let out = net.drain();
        assert_eq!(out.len(), 3);
        assert_eq!(net.round(), 4);
    }

    #[test]
    fn parallel_links_do_not_interfere() {
        let k = 6;
        let mut net: Network<B> = Network::new(cfg(k, 8));
        // Every ordered pair sends one 8-bit message: one round suffices.
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    net.send(Envelope::new(i, j, B(8)));
                }
            }
        }
        let out = net.drain();
        assert_eq!(out.len(), k * (k - 1));
        assert_eq!(net.round(), 1);
    }

    #[test]
    fn stats_track_bits_and_machines() {
        let mut net: Network<B> = Network::new(cfg(3, 100));
        net.send(Envelope::new(0, 1, B(40)));
        net.send(Envelope::new(0, 2, B(60)));
        net.send(Envelope::new(1, 0, B(5)));
        net.drain();
        let s = net.stats();
        assert_eq!(s.messages, 3);
        assert_eq!(s.total_bits, 105);
        assert_eq!(s.sent_bits, vec![100, 5, 0]);
        assert_eq!(s.recv_bits, vec![5, 40, 60]);
    }

    #[test]
    #[should_panic(expected = "local messages")]
    fn local_send_is_rejected() {
        let mut net: Network<B> = Network::new(cfg(2, 10));
        net.send(Envelope::new(1, 1, B(1)));
    }
}
