//! Per-link bandwidth policies.
//!
//! The model grants each link `O(polylog n)` bits per round. The default
//! used by all experiments is `c · ⌈log₂ n⌉²` bits (the paper's hidden
//! polylog is at most `log³ n`; a `log² n` link budget with `log n`-bit
//! words keeps message counts and round counts in the paper's regime).

/// Which §1.1 communication restriction to charge rounds under.
///
/// The paper gives two equivalent views of the model: a per-*link* budget
/// of `W` bits per round (the default, used by all bounds), or a per-
/// *machine* budget — each machine may send/receive at most `W·(k−1)` bits
/// per round in total, however distributed over its links. The two differ
/// by at most a `k−1` factor in either direction and are interchangeable
/// for the asymptotic results (\[22\], Theorem 4.1); experiment E19 measures
/// the actual gap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CostModel {
    /// `W` bits per directed link per round (the standard model).
    #[default]
    PerLink,
    /// `W·(k−1)` bits total per machine per round, send and receive each.
    PerMachine,
}

/// How many bits a directed link may carry per round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bandwidth {
    /// A fixed number of bits per round.
    Bits(u64),
    /// `c · ⌈log₂ n⌉²` bits per round — the standard polylog budget.
    PolylogSquared {
        /// The leading constant `c`.
        c: u64,
    },
}

impl Bandwidth {
    /// Resolves the policy against the instance size `n`.
    pub fn bits_per_round(self, n: usize) -> u64 {
        match self {
            Bandwidth::Bits(b) => b.max(1),
            Bandwidth::PolylogSquared { c } => {
                let log = ceil_log2(n.max(2)) as u64;
                (c * log * log).max(1)
            }
        }
    }
}

impl Default for Bandwidth {
    /// `8 · log² n` bits per round.
    fn default() -> Self {
        Bandwidth::PolylogSquared { c: 8 }
    }
}

/// `⌈log₂ x⌉` for `x ≥ 1`, extended to a *total* function with
/// `ceil_log2(0) = 0`.
///
/// The historical implementation computed `x - 1` guarded only by a
/// `debug_assert!`, so a release-mode call with `x = 0` underflowed to
/// `usize::MAX` and returned `usize::BITS` — a silent 64-bit id width that
/// poisoned every downstream bandwidth identity. Zero is now clamped: an
/// empty domain needs no bits to address.
pub fn ceil_log2(x: usize) -> u32 {
    (usize::BITS - x.saturating_sub(1).leading_zeros()).min(usize::BITS)
}

/// The number of bits needed to name one of `x` distinct values (at least 1).
pub fn id_bits(x: usize) -> u64 {
    ceil_log2(x.max(2)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn ceil_log2_is_total_at_the_boundaries() {
        // 0 must not underflow `x - 1` (the release-build bug this pins):
        // an empty domain needs no id bits.
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(usize::MAX), usize::BITS);
        assert_eq!(ceil_log2(usize::MAX / 2 + 2), usize::BITS);
    }

    #[test]
    fn id_bits_is_total_and_at_least_one() {
        assert_eq!(id_bits(0), 1);
        assert_eq!(id_bits(1), 1);
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(usize::MAX), usize::BITS as u64);
    }

    #[test]
    fn polylog_budget_grows_with_n() {
        let b = Bandwidth::PolylogSquared { c: 8 };
        assert_eq!(b.bits_per_round(1 << 10), 8 * 10 * 10);
        assert_eq!(b.bits_per_round(1 << 20), 8 * 20 * 20);
        assert!(b.bits_per_round(2) >= 1);
    }

    #[test]
    fn fixed_budget_is_fixed_and_positive() {
        assert_eq!(Bandwidth::Bits(100).bits_per_round(1 << 30), 100);
        assert_eq!(Bandwidth::Bits(0).bits_per_round(10), 1);
    }
}
