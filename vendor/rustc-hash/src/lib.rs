#![warn(missing_docs)]
//! API-compatible shim for the `rustc-hash` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the handful of external crates the code depends on. This one
//! reimplements the Fx hash — the multiply-and-rotate hasher used by the
//! Rust compiler — which is what the real `rustc-hash` ships. It is a
//! fast, deterministic (non-DoS-resistant) hasher; exactly right for the
//! seeded, reproducible experiments in this repository.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasherDefault` over [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-and-rotate hasher (word-at-a-time, deterministic).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }
}
