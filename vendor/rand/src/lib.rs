#![warn(missing_docs)]
//! API-compatible shim for the subset of the `rand` crate this workspace
//! uses (`StdRng::seed_from_u64` + `Rng::gen_range` over integer and float
//! ranges).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! its external dependencies. [`rngs::StdRng`] here is xoshiro256++ seeded
//! through SplitMix64 — a high-quality deterministic generator, which is
//! all the seeded graph generators need. The bit streams differ from the
//! real `rand`'s ChaCha12-based `StdRng`, but every consumer in this
//! workspace treats the generator as an opaque seeded source, so only
//! determinism and statistical quality matter.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: [`SeedableRng::seed_from_u64`]).
pub trait SeedableRng: Sized {
    /// Deterministically constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// A uniform sample from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// A uniform sample of a full value (subset: `bool` and ints).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a canonical uniform distribution (shim of `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<G: RngCore>(rng: &mut G) -> Self;
}

impl Standard for bool {
    fn sample<G: RngCore>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<G: RngCore>(rng: &mut G) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<G: RngCore>(rng: &mut G) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T;
}

#[inline]
fn unit_f64(word: u64) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn uniform_u64<G: RngCore>(rng: &mut G, span: u64) -> u64 {
    // Lemire-style widening-multiply bounded sampling with rejection of the
    // biased region; exact uniformity and no modulo on the hot path.
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let word = rng.next_u64();
        let wide = (word as u128) * (span as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_single<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against FP rounding hitting the excluded upper bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Concrete generators (subset: [`rngs::StdRng`]).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded via SplitMix64 (Blackman & Vigna's recommended procedure).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn split_mix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    split_mix64(&mut sm),
                    split_mix64(&mut sm),
                    split_mix64(&mut sm),
                    split_mix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn integer_sampling_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        let draws = 80_000;
        for _ in 0..draws {
            counts[r.gen_range(0usize..8)] += 1;
        }
        let mean = draws as f64 / 8.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - mean).abs() < 6.0 * mean.sqrt(),
                "bucket {i}: {c} vs mean {mean}"
            );
        }
    }
}
