#![warn(missing_docs)]
//! API-compatible shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! its external dependencies. This shim keeps the `proptest!` surface the
//! tests are written against — range/tuple strategies, `prop::collection`,
//! `prop_assert!`/`prop_assert_eq!`, `ProptestConfig::with_cases` — and
//! runs each property over a deterministic seeded case stream (no
//! shrinking; a failure report prints the case index, the seed, and the
//! generated inputs, which is enough to reproduce: case streams depend
//! only on the test name and case index).
//!
//! The case count honours the `PROPTEST_CASES` environment variable as an
//! upper bound, exactly like the real crate: CI sets a small value to keep
//! `cargo test -q` fast, while local runs default to each test's
//! configured count (and may crank `PROPTEST_CASES` up for soak runs).

use std::fmt;

/// Runner configuration (subset: case count).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run for each property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The configured count, capped by `PROPTEST_CASES` if set.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            Some(cap) => self.cases.min(cap.max(1)),
            None => self.cases,
        }
    }
}

/// A failed property case (what `prop_assert!` returns early with).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic per-case generator handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A value generator. Unlike real proptest there is no shrinking: the
/// strategy just produces a value per case from the seeded stream.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// `bool` strategy: a fair coin, written `any::<bool>()` in real proptest;
/// here the unit range-free strategy is the type itself via `Just`-like
/// helpers — the workspace only uses ranges, tuples and collections, but
/// `bool()` is provided for completeness.
pub fn bool_strategy() -> impl Strategy<Value = bool> {
    (0u8..2).map_gen(|b| b == 1)
}

/// Adapter returned by [`StrategyExt::map_gen`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for MapStrategy<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Combinators over strategies (subset: `map`, named `map_gen` to avoid
/// clashing with iterator-style inference in user code).
pub trait StrategyExt: Strategy + Sized {
    /// Maps generated values through `f`.
    fn map_gen<T, F: Fn(Self::Value) -> T>(self, f: F) -> MapStrategy<Self, F> {
        MapStrategy { inner: self, f }
    }
}

impl<S: Strategy> StrategyExt for S {}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// The `prop` namespace (`prop::collection::{vec, hash_set}`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::collections::HashSet;
        use std::hash::Hash;
        use std::ops::Range;

        /// A `Vec` of `count` elements drawn from `element`, with `count`
        /// uniform in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// Strategy returned by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.clone().generate(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A `HashSet` of distinct elements; the target size is uniform in
        /// `size`, shrunk if the element domain is too small to reach it.
        pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            HashSetStrategy { element, size }
        }

        /// Strategy returned by [`hash_set`].
        pub struct HashSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Eq + Hash,
        {
            type Value = HashSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.clone().generate(rng);
                let mut out = HashSet::new();
                // Cap draws so a small element domain cannot loop forever.
                let mut budget = 64 * (target + 1);
                while out.len() < target && budget > 0 {
                    out.insert(self.element.generate(rng));
                    budget -= 1;
                }
                out
            }
        }
    }
}

/// Everything a `use proptest::prelude::*;` consumer expects.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        StrategyExt, TestCaseError,
    };
}

/// Defines deterministic property tests over seeded case streams.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     /// docs…
///     #[test]
///     fn name(a in 0u64..10, b in prop::collection::vec(0u32..5, 0..9)) { … }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default())
            $($(#[$meta])* fn $name($($args)*) $body)*);
    };
    (@impl ($config:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __cases = __config.effective_cases();
                for __case in 0..__cases as u64 {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "property {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), __case, __cases, e, __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Fails the enclosing property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; tuples and vecs compose.
        #[test]
        fn strategies_compose(
            a in 3u64..9,
            pair in (0u32..4, 10usize..=12),
            items in prop::collection::vec(1u8..5, 0..6),
            set in prop::collection::hash_set(0u32..100, 1..8),
        ) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(pair.0 < 4);
            prop_assert!((10..=12).contains(&pair.1));
            prop_assert!(items.len() < 6);
            prop_assert!(items.iter().all(|&x| (1..5).contains(&x)));
            prop_assert!(!set.is_empty() && set.len() < 8);
        }
    }

    #[test]
    fn case_streams_are_deterministic() {
        let draw = |case| {
            let mut rng = crate::TestRng::for_case("x", case);
            (0u64..1000).generate(&mut rng)
        };
        assert_eq!(draw(5), draw(5));
    }

    #[test]
    fn env_caps_cases() {
        // Not set in the test env by default: configured count wins.
        let cfg = ProptestConfig::with_cases(77);
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(cfg.effective_cases(), 77);
        } else {
            assert!(cfg.effective_cases() <= 77);
        }
    }
}
