#![warn(missing_docs)]
//! API-compatible shim for the subset of `criterion` the benches use.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! its external dependencies. This shim keeps the bench sources unchanged
//! (`criterion_group!` / `criterion_main!` / groups / `BenchmarkId`) and
//! implements an honest but simple timer: each benchmark closure is warmed
//! up once, then run `sample_size` times (default 10, `KBENCH_SAMPLES`
//! overrides), and min/mean wall-clock times are printed. There is no
//! statistical analysis, HTML report, or saved baseline — for those, run
//! the real criterion once network access to crates.io is available; the
//! sources need no changes.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let default_samples = std::env::var("KBENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Criterion { default_samples }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.default_samples, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.default_samples,
            _c: self,
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("KBENCH_SAMPLES").is_err() {
            self.samples = n.max(1);
        }
        self
    }

    /// Accepted for API compatibility; the shim warms up with one run.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim times a fixed sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<D: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: D,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.samples, &mut f);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<D: Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: D,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.samples, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (`group/name/parameter` in output).
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new<D: Display>(name: &str, parameter: D) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id from just a parameter value.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the payload.
pub struct Bencher {
    samples: usize,
    min: Duration,
    total: Duration,
    runs: u32,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `samples` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            self.min = self.min.min(dt);
            self.total += dt;
            self.runs += 1;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples,
        min: Duration::MAX,
        total: Duration::ZERO,
        runs: 0,
    };
    f(&mut b);
    if b.runs > 0 {
        let mean = b.total / b.runs;
        println!(
            "bench {name:<48} min {:>12?}  mean {:>12?}  ({} runs)",
            b.min, mean, b.runs
        );
    } else {
        println!("bench {name:<48} (no iterations)");
    }
}

/// Declares a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(1));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, payload);

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
