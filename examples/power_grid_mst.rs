//! Minimum spanning tree of a weighted utility grid.
//!
//! A classic MST consumer: choose the cheapest set of lines that keeps a
//! power grid connected. The grid is a 2-D mesh with random per-line costs,
//! distributed over k machines; we run Theorem 2's sketch-based MST under
//! both output criteria and validate the result against Kruskal.
//!
//! Run with: `cargo run --release --example power_grid_mst`

use kmm::prelude::*;

fn main() {
    let seed = 2016;
    let grid = generators::grid(40, 50); // 2000 substations
    let g = generators::randomize_weights(&grid, 10_000, seed);
    let k = 8;
    println!(
        "power grid: {} substations, {} candidate lines, k = {}\n",
        g.n(),
        g.m(),
        k
    );

    // Criterion (a): each chosen line known by at least one machine.
    let cfg_a = MstConfig {
        criterion: OutputCriterion::AnyMachine,
        ..MstConfig::default()
    };
    let a = minimum_spanning_tree(&g, k, seed, &cfg_a);

    // Criterion (b): both endpoint machines must learn each line.
    let cfg_b = MstConfig {
        criterion: OutputCriterion::BothEndpoints,
        ..MstConfig::default()
    };
    let b = minimum_spanning_tree(&g, k, seed, &cfg_b);

    let reference = refalgo::kruskal(&g);
    println!("MST lines chosen:       {}", a.edges.len());
    println!("MST total cost:         {}", a.total_weight);
    println!(
        "Kruskal reference cost: {}",
        refalgo::forest_weight(&reference)
    );
    assert_eq!(a.total_weight, refalgo::forest_weight(&reference));
    assert!(refalgo::is_spanning_forest(&g, &a.edges));
    println!("validated: spanning + minimum ✓\n");

    println!(
        "output criterion (a) AnyMachine:    {} rounds",
        a.stats.rounds
    );
    println!(
        "output criterion (b) BothEndpoints: {} rounds",
        b.stats.rounds
    );
    println!(
        "(b) pays the Theorem-2(b) endpoint routing: +{} rounds",
        b.stats.rounds - a.stats.rounds
    );

    // How evenly criterion (a) spreads the output across machines:
    println!(
        "\nlines output per machine (criterion a): {:?}",
        a.edges_per_machine
    );
    println!("Borůvka phases: {}", a.phases);
}
