//! The §4 lower-bound construction, end to end.
//!
//! Builds Figure-1 gadgets from random set-disjointness instances, runs the
//! real spanning-connected-subgraph verifier with the machines split
//! between "Alice" and "Bob", and reports the bits crossing the cut — the
//! quantity Lemma 8 proves must be Ω(b), which forces Ω~(n/k²) rounds.
//!
//! Run with: `cargo run --release --example lower_bound_demo`

use kmm::algo::lowerbound::{simulate_scs_two_party, DisjointnessInstance, RandomInputPartition};
use kmm::prelude::*;

fn main() {
    let k = 8;
    let cfg = ConnectivityConfig::default();

    println!("Correctness of the reduction (H is an SCS iff X ∩ Y = ∅):\n");
    for (seed, force, what) in [
        (1u64, Some(true), "disjoint"),
        (2, Some(false), "intersecting"),
    ] {
        let inst = DisjointnessInstance::random(64, 300, seed, force);
        let r = simulate_scs_two_party(&inst, k, seed + 10, &cfg);
        println!(
            "  b = {:>4} ({what:>12}): verdict = {:>5}, ground truth disjoint = {}",
            r.b, r.verdict, r.disjoint
        );
        assert_eq!(r.verdict, r.disjoint);
    }

    // The random input partition: each player sees ~half the other's bits.
    let reveals = RandomInputPartition::random(64, 3);
    let alice_extra = reveals.y_to_alice.iter().filter(|&&b| b).count();
    println!("\nrandom input partition: Alice additionally sees {alice_extra}/64 of Bob's bits\n");

    println!("Cut traffic vs instance size (Lemma 8 forces Ω(b) bits):\n");
    println!(
        "{:>6} | {:>6} | {:>12} | {:>10} | {:>14}",
        "b", "n", "cut bits", "rounds", "T·k²·W bound"
    );
    println!("{}", "-".repeat(60));
    for b in [64usize, 128, 256, 512, 1024] {
        let inst = DisjointnessInstance::random(b, 300, b as u64, Some(true));
        let r = simulate_scs_two_party(&inst, k, 77, &cfg);
        println!(
            "{:>6} | {:>6} | {:>12} | {:>10} | {:>14}",
            b,
            2 * b + 2,
            r.cut_bits,
            r.rounds,
            r.simulation_budget(k)
        );
        assert!(r.simulation_budget(k) >= r.cut_bits);
    }
    println!(
        "\nCut bits grow ~linearly in b while the T·k²·W simulation budget\n\
         always dominates them — the two sides of Theorem 5's argument."
    );
}
