//! Community detection on synthetic social networks — and the
//! sketch-vs-flooding crossover.
//!
//! Flooding solves connectivity in `Θ(n/k + D)` rounds (paper §1.2); the
//! sketch algorithm needs `O~(n/k²)`. Which wins depends on the diameter
//! `D`: tight communities (D ≈ 3) favor flooding, while elongated networks
//! (chains of acquaintances, D ≈ n) leave flooding stuck at its `D` term —
//! exactly the regime the paper's algorithm dominates. This example runs
//! both regimes and shows the crossover plus the superlinear k-scaling of
//! the sketch algorithm (Theorem 1).
//!
//! Run with: `cargo run --release --example social_components`

use kmm::algo::baselines::flooding::flooding_connectivity;
use kmm::machine::Bandwidth;
use kmm::prelude::*;

fn run_case(name: &str, g: &kmm::graph::Graph, truth: usize) {
    println!("\n== {name}: n = {}, m = {}, D-regime ==", g.n(), g.m());
    println!(
        "{:>4} | {:>13} | {:>15} | {:>9}",
        "k", "sketch rounds", "flooding rounds", "winner"
    );
    println!("{}", "-".repeat(52));
    let mut prev = None;
    for k in [8usize, 16, 32] {
        let ours = connected_components(g, k, 7, &ConnectivityConfig::default());
        assert_eq!(ours.component_count(), truth);
        let flood = flooding_connectivity(g, k, 7, Bandwidth::default());
        assert_eq!(flood.component_count(), truth);
        let winner = if ours.stats.rounds < flood.stats.rounds {
            "sketch"
        } else {
            "flooding"
        };
        println!(
            "{:>4} | {:>13} | {:>15} | {:>9}",
            k, ours.stats.rounds, flood.stats.rounds, winner
        );
        if let Some(p) = prev {
            println!(
                "     |  (doubling k: sketch rounds fell {:.2}x)",
                p as f64 / ours.stats.rounds as f64
            );
        }
        prev = Some(ours.stats.rounds);
    }
}

fn main() {
    let n = 6_000;
    let seed = 7;

    // Regime 1: 12 dense communities — diameter ~3, flooding's home turf.
    let communities = generators::planted_components(n, 12, 800, seed);
    run_case("dense communities (low diameter)", &communities, 12);

    // Regime 2: one long chain of acquaintances — diameter ~n, where
    // flooding pays Θ(D) and the sketch algorithm wins by its n/k² bound.
    let chain = generators::path(n);
    run_case("acquaintance chain (high diameter)", &chain, 1);

    println!(
        "\nTakeaway: flooding costs Θ(n/k + D) and wins only when the\n\
         diameter is tiny; the paper's O~(n/k²) algorithm is insensitive to\n\
         D and scales superlinearly in k (Theorem 1). Experiment E2 sweeps\n\
         this crossover systematically."
    );
}
