//! Quickstart: connected components of a small graph over k machines.
//!
//! Run with: `cargo run --release --example quickstart`

use kmm::prelude::*;

fn main() {
    // A graph with three planted components on 3,000 vertices, scattered
    // over k = 8 machines by hashing (the random vertex partition of §1.1).
    let n = 3_000;
    let k = 8;
    let seed = 42;
    let g = generators::planted_components(n, 3, 4, seed);
    println!("input: n = {}, m = {}, k = {} machines", g.n(), g.m(), k);

    // Run the O~(n/k²)-round connectivity algorithm.
    let out = connected_components(&g, k, seed, &ConnectivityConfig::default());

    println!("components found:       {}", out.component_count());
    println!(
        "components via §2.6 protocol: {}",
        out.counted_components.expect("output protocol ran")
    );
    println!("Borůvka phases:         {}", out.phases);
    println!("rounds:                 {}", out.stats.rounds);
    println!("total bits on links:    {}", out.stats.total_bits);
    println!("max bits over any link:  {}", out.stats.max_link_bits);
    println!(
        "DRR tree depths by phase: {:?} (Lemma 6 predicts O(log n))",
        out.drr_depths
    );

    // Verify against the exact sequential reference.
    let truth = refalgo::component_count(&g);
    assert_eq!(out.component_count(), truth);
    println!("verified against union-find reference: {truth} components ✓");
}
