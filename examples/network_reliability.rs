//! Network reliability triage: min-cut estimation plus verification.
//!
//! Scenario: a data-center fabric built from two dense pods joined by a few
//! uplinks. Operators want (1) a fast estimate of the global min cut (how
//! many line failures can partition the fabric), and (2) verification
//! queries — is this edge set a cut? does this link lie on every path
//! between two hosts? is the fabric bipartite (two-level)?
//!
//! Exercises Theorems 3 and 4 on one topology.
//!
//! Run with: `cargo run --release --example network_reliability`

use kmm::algo::verify;
use kmm::prelude::*;
use rustc_hash::FxHashSet;

fn main() {
    let seed = 99;
    let k = 8;
    // Two 400-switch pods, 3 uplinks of capacity 2 each: min cut = 6.
    let g = generators::barbell(400, 3, 2, seed);
    let block = 400u32;
    println!("fabric: n = {}, m = {}, k = {}\n", g.n(), g.m(), k);

    // --- Theorem 3: O(log n)-approximate min cut. ---
    let exact = kmm::graph::mincut::stoer_wagner(&g).expect("connected");
    let approx = approx_min_cut(&g, k, seed, &MinCutConfig::default());
    println!("exact min cut (Stoer–Wagner reference): {exact}");
    println!(
        "approximate min cut:  {} (probe {} of {}, {} rounds)",
        approx.estimate, approx.disconnecting_probe, approx.probes, approx.stats.rounds
    );
    let ratio = (approx.estimate.max(1) as f64 / exact as f64)
        .max(exact as f64 / approx.estimate.max(1) as f64);
    println!(
        "approximation ratio:  {ratio:.2} (Theorem 3 allows O(log n) = {:.1})\n",
        (g.n() as f64).log2()
    );

    // --- Theorem 4 verification queries. ---
    let cfg = ConnectivityConfig::default();
    // The three uplinks form a cut.
    let uplinks: FxHashSet<(u32, u32)> = (0..3u32).map(|i| (i, i + block)).collect();
    let v1 = verify::cut_verification(&g, &uplinks, k, seed + 1, &cfg);
    println!(
        "cut verification (3 uplinks):        {} ({} rounds)",
        v1.holds, v1.stats.rounds
    );
    assert!(v1.holds);

    // Two of the three uplinks are not a cut.
    let two: FxHashSet<(u32, u32)> = (0..2u32).map(|i| (i, i + block)).collect();
    let v2 = verify::cut_verification(&g, &two, k, seed + 2, &cfg);
    println!(
        "cut verification (2 uplinks):        {} ({} rounds)",
        v2.holds, v2.stats.rounds
    );
    assert!(!v2.holds);

    // Hosts in different pods are connected (through the uplinks).
    let v3 = verify::st_connectivity(&g, 5, block + 5, k, seed + 3, &cfg);
    println!(
        "s-t connectivity across pods:        {} ({} rounds)",
        v3.holds, v3.stats.rounds
    );
    assert!(v3.holds);

    // A dense pod is full of redundant paths: no single uplink is on all
    // paths between two same-pod hosts.
    let v4 = verify::edge_on_all_paths(&g, (0, block), 1, 2, k, seed + 4, &cfg);
    println!(
        "uplink on all paths within a pod:    {} ({} rounds)",
        v4.holds, v4.stats.rounds
    );
    assert!(!v4.holds);

    // Dense random pods contain odd cycles: not bipartite.
    let v5 = verify::bipartiteness(&g, k, seed + 5, &cfg);
    println!(
        "bipartiteness:                       {} ({} rounds)",
        v5.holds, v5.stats.rounds
    );
}
