//! `kmm` — command-line front end for the k-machine algorithms.
//!
//! ```text
//! kmm conn    --input graph.txt --k 16 [--seed 42]
//! kmm conn    --gen gnm --n 100000 --m 400000 --k 32     # streamed, no file
//! kmm mst     --input graph.txt --k 16 [--both-endpoints]
//! kmm st      --input graph.txt --k 16
//! kmm mincut  --input graph.txt --k 16
//! kmm stcon   --input graph.txt --k 16 --s 0 --t 5
//! kmm bipart  --input graph.txt --k 16
//! kmm gen     --family gnm --n 1000 --m 4000 --out graph.txt
//! ```
//!
//! The algorithm subcommands (`conn`, `mst`, `st`, `mincut`) all flow
//! through one generic runner over the session API: the input — either
//! `--input FILE` (the `kgraph::io` edge-list format) or `--gen FAMILY` (a
//! synthetic workload streamed straight into per-machine shards) — is
//! ingested exactly once into a `Cluster`, the selected `Problem` runs on
//! it, and the common `RunReport` trailer (rounds, total bits, wall time)
//! is printed after the problem-specific lines. Either way no central
//! graph copy is ever handed to an algorithm.

use kmm::algo::session::{Cluster, Connectivity, MinCut, Mst, Problem, SpanningForest};
use kmm::algo::verify;
use kmm::graph::stream::DynEdgeStream;
use kmm::machine::fault::FaultPlan;
use kmm::prelude::*;
use std::process::ExitCode;

/// The algorithm/utility subcommands, in help order (kept next to `usage`
/// so unknown-subcommand errors can list exactly what exists).
const SUBCOMMANDS: &[&str] = &[
    "conn", "mst", "st", "mincut", "dyn", "stcon", "bipart", "gen", "check", "trace",
];

/// Minimal argument parser: `--key value` pairs plus boolean `--flag`s.
struct Args {
    cmd: String,
    kv: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse() -> Option<Args> {
        let mut it = std::env::args().skip(1);
        let cmd = it.next()?;
        let mut kv = Vec::new();
        let mut flags = Vec::new();
        let rest: Vec<String> = it.collect();
        let mut i = 0;
        while i < rest.len() {
            let a = rest[i].strip_prefix("--")?.to_string();
            if i + 1 < rest.len() && !rest[i + 1].starts_with("--") {
                kv.push((a, rest[i + 1].clone()));
                i += 2;
            } else {
                flags.push(a);
                i += 1;
            }
        }
        Some(Args { cmd, kv, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.kv
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_num<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.get(key)?.parse().ok()
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: kmm <{}> [--input FILE | --gen FAMILY] [--k K] [--seed S] ...\n\
         \n\
         conn    connected components (O~(n/k^2), Theorem 1)\n\
         mst     minimum spanning tree (Theorem 2; --both-endpoints for criterion (b))\n\
         st      spanning forest (no weight-elimination overhead)\n\
         mincut  O(log n)-approximate min cut (Theorem 3)\n\
         dyn     replay an update trace on a live cluster (--trace FILE; `+ u v [w]`,\n\
                 `- u v`, `---` batch boundary) with a per-batch report trailer\n\
                 covering connectivity, the spanning forest and the maintained MST\n\
         stcon   s-t connectivity (--s S --t T; Theorem 4)\n\
         bipart  bipartiteness via the double cover (Theorem 4)\n\
         gen     generate a graph file (--family ... --n N [--m M] [--p P] [--out FILE])\n\
         check   run the kcheck invariant lints over the workspace sources\n\
                 (--root DIR, --allow FILE; exits nonzero on any violation)\n\
         trace   inspect a --trace-out stream: `trace summarize FILE` prints the\n\
                 per-phase table, `trace chrome IN [OUT]` exports a Chrome trace\n\
         \n\
         input:  --input FILE            edge-list file (n m header, `u v [w]` lines)\n\
                 --gen FAMILY            streamed synthetic workload, no file; families:\n\
                                         gnm|gnp|path|cycle|grid|star|tree|connected\n\
                 --n N --m M --p P       family size parameters\n\
                 --extra E               extra non-tree edges for `connected`\n\
                 --max-weight W          random weights in [1, W]\n\
         faults: --faults SPEC           inject seeded faults and survive them; SPEC is\n\
                                         comma-separated drop=P,dup=P,reorder=P,delay=P,\n\
                                         crash=MACHINE@SUPERSTEP (repeatable), seed=S —\n\
                                         outputs stay bit-identical, recovery is costed\n\
         perf:   --contract              supergraph contraction between Boruvka phases\n\
                                         (DESIGN.md 3.11; identical outputs, fewer bits)\n\
                 --encoding naive|varint charge per-message widths (default) or the\n\
                                         delta-varint batch wire size (accounting only)\n\
                 --transport sim|proc    run windows in-process (default) or through one\n\
                                         OS worker per machine over Unix sockets; outputs\n\
                                         and logical stats are identical either way\n\
         output: --report json           machine-readable RunReport on stdout\n\
                 --trace-out FILE        write the run's logical trace as JSONL to FILE\n\
                                         (physical channel to FILE.phys; inspect with\n\
                                         `kmm trace summarize` / `kmm trace chrome`)",
        SUBCOMMANDS.join("|")
    );
    ExitCode::from(2)
}

fn load_graph(args: &Args) -> Result<Graph, String> {
    let path = args
        .get("input")
        .ok_or("missing --input (or --gen FAMILY for a streamed synthetic input)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    kmm::graph::io::from_edge_list(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// A lazy edge stream for `--gen FAMILY` runs. Validates the family
/// parameters up front: every bad value is a clean error, never a panic.
fn stream_from_args(args: &Args, seed: u64) -> Result<DynEdgeStream, String> {
    let family = args.get("gen").expect("caller checked --gen");
    let n: usize = args.get_num("n").ok_or("--gen needs --n")?;
    if n == 0 {
        return Err("--n must be at least 1".into());
    }
    let s = match family {
        "gnm" => {
            let m: usize = args.get_num("m").unwrap_or(4 * n);
            let max = n as u64 * (n as u64 - 1) / 2;
            if m as u64 > max {
                return Err(format!(
                    "--m {m} exceeds the {max} possible edges on {n} vertices"
                ));
            }
            generators::gnm_stream(n, m, seed)
        }
        "gnp" => {
            let p: f64 = args.get_num("p").unwrap_or(0.01);
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("--p {p} must lie in [0, 1]"));
            }
            generators::gnp_stream(n, p, seed)
        }
        "path" => generators::path_stream(n),
        "cycle" => generators::cycle_stream(n.max(3)),
        "grid" => {
            let side = (n as f64).sqrt().ceil() as usize;
            generators::grid_stream(side, side)
        }
        "star" => generators::star_stream(n.max(2)),
        "tree" => generators::random_tree_stream(n, seed),
        "connected" => {
            generators::random_connected_stream(n, args.get_num("extra").unwrap_or(n), seed)
        }
        other => return Err(format!("unknown --gen family {other}")),
    };
    match args.get_num::<u64>("max-weight") {
        Some(0) => Err("--max-weight must be at least 1".into()),
        Some(w) => Ok(generators::weighted_stream(s, w, seed ^ 1)),
        None => Ok(s),
    }
}

/// The ingested cluster every algorithm subcommand runs against: either a
/// parsed edge-list file or a `--gen` workload streamed directly into
/// per-machine shards — one ingestion either way. Streamed runs print the
/// *effective* graph size — families like `grid`, `cycle` and `star` round
/// `--n` up to the nearest shape that exists.
fn cluster_from_args(args: &Args, k: usize, seed: u64, verbose: bool) -> Result<Cluster, String> {
    let builder = Cluster::builder(k).seed(seed);
    if args.get("gen").is_some() {
        let stream = stream_from_args(args, seed)?;
        let cluster = builder.ingest_stream(stream);
        if verbose {
            println!("streamed input: n={} m={} k={k}", cluster.n(), cluster.m());
        }
        Ok(cluster)
    } else {
        Ok(builder.ingest_graph(&load_graph(args)?))
    }
}

/// Whether `--report json` asked for machine-readable output. Any other
/// `--report` value is an error — silently falling back to the human
/// trailer would break whatever is parsing stdout.
fn json_mode(args: &Args) -> Result<bool, String> {
    match args.get("report") {
        None => Ok(false),
        Some("json") => Ok(true),
        Some(other) => Err(format!(
            "unknown --report format `{other}` (supported: json)"
        )),
    }
}

/// Serializes a [`RunReport`] (plus caller-provided leading fields, already
/// JSON-encoded) as one JSON object. Hand-rolled like kbench's records —
/// the build environment has no serde.
fn report_json(report: &kmm::algo::session::RunReport, head: &[(&str, String)]) -> String {
    let mut fields: Vec<String> = head.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    let s = &report.stats;
    for (k, v) in [
        ("rounds", s.rounds),
        ("supersteps", s.supersteps),
        ("messages", s.messages),
        ("total_bits", s.total_bits),
        ("max_link_bits", s.max_link_bits),
        ("max_machine_recv_bits", s.max_machine_recv_bits()),
        ("phases", report.phases as u64),
        ("sketch_builds", report.sketch_builds),
        ("sketch_cache_hits", report.sketch_cache_hits),
        ("update_rounds", report.update_rounds),
        ("update_bits", report.update_bits),
        ("faults_injected", report.faults_injected),
        ("retransmit_bits", report.retransmit_bits),
        ("recovery_rounds", report.recovery_rounds),
        ("machine_crashes", s.machine_crashes),
    ] {
        fields.push(format!("\"{k}\": {v}"));
    }
    fields.insert(0, format!("\"problem\": \"{}\"", report.problem));
    fields.push(format!(
        "\"wall_ms\": {:.3}",
        report.wall.as_secs_f64() * 1e3
    ));
    format!("{{{}}}", fields.join(", "))
}

/// The one generic algorithm runner behind `conn`/`mst`/`st`/`mincut`:
/// ingest into a cluster, run the problem, print its specific lines via
/// `print`, then the common report trailer — or, under `--report json`,
/// exactly one machine-readable object carrying both the answer summary
/// (`answer`'s key/value pairs, values already JSON-encoded) and the
/// `RunReport`.
fn run_problem<P: Problem>(
    args: &Args,
    k: usize,
    seed: u64,
    transport: TransportSel,
    problem: P,
    answer: impl FnOnce(&P::Output) -> Vec<(&'static str, String)>,
    print: impl FnOnce(&Args, &P::Output),
) -> ExitCode {
    let json = match json_mode(args) {
        Ok(json) => json,
        Err(e) => return fail(&e),
    };
    let cluster = match cluster_from_args(args, k, seed, !json) {
        Ok(cluster) => cluster,
        Err(e) => return fail(&e),
    };
    let run = cluster.run(problem);
    if json {
        let mut head = vec![("transport", format!("\"{}\"", transport.name()))];
        head.extend(answer(&run.output));
        println!("{}", report_json(&run.report, &head));
    } else {
        print(args, &run.output);
        println!("rounds:     {}", run.report.stats.rounds);
        println!("total bits: {}", run.report.stats.total_bits);
        if args.get("faults").is_some() {
            println!(
                "faults:     {} injected, {} machine crashes",
                run.report.faults_injected, run.report.stats.machine_crashes
            );
            println!(
                "recovery:   {} rounds, {} retransmit bits",
                run.report.recovery_rounds, run.report.retransmit_bits
            );
        }
        println!("wall:       {:.1?}", run.report.wall);
    }
    ExitCode::SUCCESS
}

/// `kmm dyn`: ingest, wrap into a `DynamicCluster`, replay the `--trace`
/// batches, and print a per-batch trailer (components, forest size, the
/// maintained MST's weight/size/refresh path, solve and update-phase
/// costs) — JSON lines under `--report json`.
#[allow(clippy::too_many_arguments)]
fn run_dyn(
    args: &Args,
    k: usize,
    seed: u64,
    faults: Option<FaultPlan>,
    contract: bool,
    encoding: Encoding,
    transport: TransportSel,
    trace: &Tracer,
) -> ExitCode {
    let Some(path) = args.get("trace") else {
        return fail("dyn needs --trace FILE (`+ u v [w]` / `- u v` / `---` per line)");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("read {path}: {e}")),
    };
    let batches = match UpdateBatch::parse_trace(&text) {
        Ok(b) => b,
        Err(e) => return fail(&format!("parse {path}: {e}")),
    };
    let json = match json_mode(args) {
        Ok(json) => json,
        Err(e) => return fail(&e),
    };
    let cluster = match cluster_from_args(args, k, seed, !json) {
        Ok(cluster) => cluster,
        Err(e) => return fail(&e),
    };
    let mut dc = DynamicCluster::wrap(
        cluster,
        DynConfig {
            faults: faults.clone(),
            trace: trace.clone(),
            ..DynConfig::default()
        },
    );
    let conn_cfg = ConnectivityConfig {
        faults: faults.clone(),
        contract,
        encoding,
        transport,
        trace: trace.clone(),
        ..ConnectivityConfig::default()
    };
    let mst_cfg = MstConfig {
        faults,
        contract,
        encoding,
        transport,
        trace: trace.clone(),
        ..MstConfig::default()
    };
    let emit = |batch: usize, up: Option<&UpdateReport>, dc: &mut DynamicCluster| {
        let conn = dc.connectivity(&conn_cfg);
        // Read the refresh kind now: the follow-up spanning-forest call is
        // served from the structure the connectivity solve just refreshed.
        let refresh = match dc.last_refresh() {
            RefreshKind::Cached => "cached".to_string(),
            RefreshKind::Incremental { active_vertices } => {
                format!("incremental({active_vertices})")
            }
            RefreshKind::Full => "full".to_string(),
        };
        let st = dc.spanning_forest(&mst_cfg);
        let mst = dc.mst(&mst_cfg);
        let mst_refresh = match dc.last_refresh() {
            RefreshKind::Cached => "cached".to_string(),
            RefreshKind::Incremental { active_vertices } => {
                format!("incremental({active_vertices})")
            }
            RefreshKind::Full => "full".to_string(),
        };
        if json {
            let mut head = vec![("batch", batch.to_string())];
            if let Some(u) = up {
                head.push(("ops", u.ops.to_string()));
                head.push(("inserts", u.inserts.to_string()));
                head.push(("deletes", u.deletes.to_string()));
            }
            head.push(("refresh", format!("\"{refresh}\"")));
            head.push(("components", conn.output.component_count().to_string()));
            head.push(("forest_edges", st.output.edges.len().to_string()));
            head.push(("mst_refresh", format!("\"{mst_refresh}\"")));
            head.push(("mst_edges", mst.output.edges.len().to_string()));
            head.push(("mst_weight", mst.output.total_weight.to_string()));
            println!("{}", report_json(&conn.report, &head));
        } else {
            match up {
                None => println!("base solve:"),
                Some(u) => println!(
                    "batch {batch}: {} ops (+{}/-{}), update rounds {} bits {}{}",
                    u.ops,
                    u.inserts,
                    u.deletes,
                    conn.report.update_rounds,
                    conn.report.update_bits,
                    if u.compacted { ", compacted" } else { "" }
                ),
            }
            println!("  refresh:      {refresh}");
            println!("  components:   {}", conn.output.component_count());
            println!("  forest edges: {}", st.output.edges.len());
            println!(
                "  mst:          weight {} over {} edges ({mst_refresh})",
                mst.output.total_weight,
                mst.output.edges.len()
            );
            println!("  rounds:       {}", conn.report.stats.rounds);
            println!("  total bits:   {}", conn.report.stats.total_bits);
            println!("  wall:         {:.1?}", conn.report.wall);
        }
    };
    emit(0, None, &mut dc);
    for (i, batch) in batches.iter().enumerate() {
        match dc.apply(batch) {
            Ok(up) => emit(i + 1, Some(&up), &mut dc),
            Err(e) => return fail(&format!("batch {}: {e}", i + 1)),
        }
    }
    if !json {
        let (ins, del) = dc.ops_applied();
        println!(
            "replayed {} batches (+{ins}/-{del}), {} compactions, final n={} m={}",
            batches.len(),
            dc.compactions(),
            dc.n(),
            dc.m()
        );
    }
    ExitCode::SUCCESS
}

/// `kmm __transport-worker DIR MACHINE K`: serve one machine's socket mesh
/// until the coordinator shuts the run down.
fn run_transport_worker(argv: &[String]) -> ExitCode {
    let (Some(dir), Some(machine), Some(k)) = (
        argv.first(),
        argv.get(1).and_then(|a| a.parse::<usize>().ok()),
        argv.get(2).and_then(|a| a.parse::<usize>().ok()),
    ) else {
        return fail("__transport-worker needs <dir> <machine> <k>");
    };
    match kmm::machine::transport::worker_main(std::path::Path::new(dir), machine, k) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&format!("transport worker {machine}: {e}")),
    }
}

/// Builds the tracer `--trace-out FILE` asks for: a JSONL file sink for
/// the logical stream plus `FILE.phys` for the physical channel. Without
/// the flag the run keeps the zero-cost off tracer.
fn tracer_from_args(args: &Args) -> Result<Tracer, String> {
    let Some(path) = args.get("trace-out") else {
        return Ok(Tracer::off());
    };
    let logical = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    let phys_path = format!("{path}.phys");
    let phys = std::fs::File::create(&phys_path).map_err(|e| format!("create {phys_path}: {e}"))?;
    Ok(Tracer::to_sink(Box::new(JsonlSink::with_phys(
        std::io::BufWriter::new(logical),
        std::io::BufWriter::new(phys),
    ))))
}

/// `kmm trace summarize FILE` / `kmm trace chrome IN [OUT]`: the offline
/// inspectors over a `--trace-out` logical JSONL stream. Positional
/// operands, so this is dispatched before the `--key value` parser runs.
fn run_trace_tool(argv: &[String]) -> ExitCode {
    const USAGE: &str = "usage: kmm trace <summarize FILE | chrome IN [OUT]>";
    let read_records = |path: &str| -> Result<Vec<TraceRecord>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        kmm::machine::trace::parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))
    };
    match (
        argv.first().map(String::as_str),
        argv.get(1),
        argv.get(2),
        argv.len(),
    ) {
        (Some("summarize"), Some(path), None, 2) => match read_records(path) {
            Ok(records) => {
                print!("{}", kmm::machine::trace::summarize(&records));
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e),
        },
        (Some("chrome"), Some(path), out, 2 | 3) => match read_records(path) {
            Ok(records) => {
                let json = kmm::machine::trace::chrome_trace(&records);
                match out {
                    Some(dst) => {
                        if let Err(e) = std::fs::write(dst, json) {
                            return fail(&format!("write {dst}: {e}"));
                        }
                        println!("wrote {dst}");
                        ExitCode::SUCCESS
                    }
                    None => {
                        print!("{json}");
                        ExitCode::SUCCESS
                    }
                }
            }
            Err(e) => fail(&e),
        },
        _ => fail(USAGE),
    }
}

/// `kmm check [--root DIR] [--allow FILE]` — the kcheck static pass
/// (DESIGN.md §3.13). Scans the workspace sources, applies the audited
/// exceptions in `kcheck.allow`, prints rustc-style diagnostics, and exits
/// nonzero if any violation (or stale allowlist entry) remains.
fn run_check(args: &Args) -> ExitCode {
    let root = std::path::PathBuf::from(args.get("root").unwrap_or("."));
    if !root.join("Cargo.toml").exists() {
        return fail(&format!(
            "{}: no Cargo.toml here; pass --root <workspace dir>",
            root.display()
        ));
    }
    let allow = match args.get("allow") {
        Some(p) => std::path::PathBuf::from(p),
        None => root.join("kcheck.allow"),
    };
    let cfg = kcheck::Config::workspace();
    let report = match kcheck::check_workspace(&root, &cfg, &allow) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    for d in &report.diags {
        eprintln!("{d}");
    }
    for e in &report.stale_allow {
        eprintln!(
            "error[allow]: kcheck.allow:{} suppresses nothing (stale entry): {} {} \"{}\"",
            e.line, e.code, e.file, e.needle
        );
    }
    eprintln!(
        "kmm check: {} files, {} violation(s), {} suppressed by kcheck.allow, {} stale entr{}",
        report.files_scanned,
        report.diags.len(),
        report.suppressed,
        report.stale_allow.len(),
        if report.stale_allow.len() == 1 {
            "y"
        } else {
            "ies"
        },
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    // Re-exec entry of the multi-process transport (DESIGN.md §3.12): the
    // coordinator spawns `kmm __transport-worker <dir> <machine> <k>` — one
    // per simulated machine — before normal argument parsing ever runs.
    // Hidden on purpose: it is an implementation detail of `--transport
    // proc`, not a user-facing subcommand.
    let raw: Vec<String> = std::env::args().collect();
    if raw.get(1).map(String::as_str) == Some("__transport-worker") {
        return run_transport_worker(&raw[2..]);
    }
    // `kmm trace` takes positional operands, so it bypasses the
    // `--key value` parser too.
    if raw.get(1).map(String::as_str) == Some("trace") {
        return run_trace_tool(&raw[2..]);
    }
    let Some(args) = Args::parse() else {
        return usage();
    };
    let k: usize = args.get_num("k").unwrap_or(8);
    let seed: u64 = args.get_num("seed").unwrap_or(42);
    if args.cmd == "check" {
        return run_check(&args);
    }
    if args.cmd != "gen" && k < 2 {
        return fail("the k-machine model requires --k >= 2");
    }
    let faults = match args.get("faults").map(FaultPlan::parse).transpose() {
        Ok(f) => f,
        Err(e) => return fail(&format!("--faults: {e}")),
    };
    let contract = args.flag("contract");
    let encoding = match args.get("encoding") {
        None | Some("naive") => Encoding::Naive,
        Some("varint") => Encoding::Varint,
        Some(other) => return fail(&format!("--encoding {other}: expected naive or varint")),
    };
    let transport = match args.get("transport").map(TransportSel::parse) {
        None => TransportSel::Sim,
        Some(Ok(t)) => t,
        Some(Err(e)) => return fail(&format!("--transport: {e}")),
    };
    let trace = match tracer_from_args(&args) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let code = match args.cmd.as_str() {
        "conn" => run_problem(
            &args,
            k,
            seed,
            transport,
            Connectivity::with(ConnectivityConfig {
                faults: faults.clone(),
                contract,
                encoding,
                transport,
                trace: trace.clone(),
                ..ConnectivityConfig::default()
            }),
            |out| vec![("components", out.component_count().to_string())],
            |_, out| {
                println!("components: {}", out.component_count());
                println!("phases:     {}", out.phases);
            },
        ),
        "mst" => {
            let cfg = MstConfig {
                criterion: if args.flag("both-endpoints") {
                    OutputCriterion::BothEndpoints
                } else {
                    OutputCriterion::AnyMachine
                },
                faults: faults.clone(),
                contract,
                encoding,
                transport,
                trace: trace.clone(),
                ..MstConfig::default()
            };
            run_problem(
                &args,
                k,
                seed,
                transport,
                Mst::with(cfg),
                |out| {
                    vec![
                        ("forest_edges", out.edges.len().to_string()),
                        ("total_weight", out.total_weight.to_string()),
                    ]
                },
                |args, out| {
                    println!("forest edges: {}", out.edges.len());
                    println!("total weight: {}", out.total_weight);
                    if args.flag("print-edges") {
                        for e in &out.edges {
                            println!("{} {} {}", e.u, e.v, e.w);
                        }
                    }
                },
            )
        }
        "st" => run_problem(
            &args,
            k,
            seed,
            transport,
            SpanningForest::with(MstConfig {
                faults: faults.clone(),
                contract,
                encoding,
                transport,
                trace: trace.clone(),
                ..MstConfig::default()
            }),
            |out| vec![("forest_edges", out.edges.len().to_string())],
            |_, out| {
                println!("forest edges: {}", out.edges.len());
            },
        ),
        "mincut" => run_problem(
            &args,
            k,
            seed,
            transport,
            MinCut::with(MinCutConfig {
                faults: faults.clone(),
                contract,
                encoding,
                transport,
                trace: trace.clone(),
                ..MinCutConfig::default()
            }),
            |out| {
                vec![
                    ("estimate", out.estimate.to_string()),
                    ("probes", out.probes.to_string()),
                ]
            },
            |_, out| {
                println!("estimate: {}", out.estimate);
                println!("probes:   {}", out.probes);
            },
        ),
        "dyn" => run_dyn(
            &args, k, seed, faults, contract, encoding, transport, &trace,
        ),
        "stcon" => {
            let g = match load_graph(&args) {
                Ok(g) => g,
                Err(e) => return fail(&e),
            };
            let (Some(s), Some(t)) = (args.get_num::<u32>("s"), args.get_num::<u32>("t")) else {
                return fail("stcon needs --s and --t");
            };
            if s as usize >= g.n() || t as usize >= g.n() {
                return fail("--s/--t out of range");
            }
            let cfg = ConnectivityConfig {
                faults: faults.clone(),
                contract,
                encoding,
                transport,
                ..ConnectivityConfig::default()
            };
            let v = verify::st_connectivity(&g, s, t, k, seed, &cfg);
            println!("connected: {}", v.holds);
            println!("rounds:    {}", v.stats.rounds);
            if faults.is_some() {
                println!(
                    "faults:    {} injected, recovery {} rounds",
                    v.stats.faults_injected, v.stats.recovery_rounds
                );
            }
            ExitCode::SUCCESS
        }
        "bipart" => {
            let g = match load_graph(&args) {
                Ok(g) => g,
                Err(e) => return fail(&e),
            };
            let cfg = ConnectivityConfig {
                faults: faults.clone(),
                contract,
                encoding,
                transport,
                ..ConnectivityConfig::default()
            };
            let v = verify::bipartiteness(&g, k, seed, &cfg);
            println!("bipartite: {}", v.holds);
            println!("rounds:    {}", v.stats.rounds);
            if faults.is_some() {
                println!(
                    "faults:    {} injected, recovery {} rounds",
                    v.stats.faults_injected, v.stats.recovery_rounds
                );
            }
            ExitCode::SUCCESS
        }
        "gen" => {
            let n: usize = match args.get_num("n") {
                Some(n) => n,
                None => return fail("gen needs --n"),
            };
            let g = match args.get("family").unwrap_or("gnm") {
                "gnm" => {
                    let m = args.get_num("m").unwrap_or(4 * n);
                    generators::gnm(n, m, seed)
                }
                "gnp" => {
                    let p: f64 = args.get_num("p").unwrap_or(0.01);
                    generators::gnp(n, p, seed)
                }
                "path" => generators::path(n),
                "cycle" => generators::cycle(n.max(3)),
                "grid" => {
                    let side = (n as f64).sqrt().ceil() as usize;
                    generators::grid(side, side)
                }
                "star" => generators::star(n.max(2)),
                other => return fail(&format!("unknown family {other}")),
            };
            let g = if let Some(w) = args.get_num::<u64>("max-weight") {
                generators::randomize_weights(&g, w, seed ^ 1)
            } else {
                g
            };
            let text = kmm::graph::io::to_edge_list(&g);
            match args.get("out") {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, text) {
                        return fail(&format!("write {path}: {e}"));
                    }
                    println!("wrote n={} m={} to {path}", g.n(), g.m());
                }
                None => print!("{text}"),
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!(
                "error: unknown subcommand `{other}` (valid subcommands: {})",
                SUBCOMMANDS.join(", ")
            );
            usage()
        }
    };
    trace.flush();
    code
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}
