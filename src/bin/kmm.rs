//! `kmm` — command-line front end for the k-machine algorithms.
//!
//! ```text
//! kmm conn    --input graph.txt --k 16 [--seed 42]
//! kmm conn    --gen gnm --n 100000 --m 400000 --k 32     # streamed, no file
//! kmm mst     --input graph.txt --k 16 [--both-endpoints]
//! kmm st      --input graph.txt --k 16
//! kmm mincut  --input graph.txt --k 16
//! kmm stcon   --input graph.txt --k 16 --s 0 --t 5
//! kmm bipart  --input graph.txt --k 16
//! kmm gen     --family gnm --n 1000 --m 4000 --out graph.txt
//! ```
//!
//! `conn`, `mst`, `st` and `mincut` accept either `--input FILE` (the
//! `kgraph::io` edge-list format: `n m` header, one `u v [w]` per line, `#`
//! comments) or `--gen FAMILY` — a synthetic workload streamed straight
//! into per-machine sharded storage, so graphs far larger than a single
//! edge list fit comfortably. Either way the algorithms run against
//! `ShardedGraph` views, never a central graph copy.

use kmm::algo::verify;
use kmm::graph::stream::DynEdgeStream;
use kmm::graph::ShardedGraph;
use kmm::prelude::*;
use std::process::ExitCode;

/// Minimal argument parser: `--key value` pairs plus boolean `--flag`s.
struct Args {
    cmd: String,
    kv: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse() -> Option<Args> {
        let mut it = std::env::args().skip(1);
        let cmd = it.next()?;
        let mut kv = Vec::new();
        let mut flags = Vec::new();
        let rest: Vec<String> = it.collect();
        let mut i = 0;
        while i < rest.len() {
            let a = rest[i].strip_prefix("--")?.to_string();
            if i + 1 < rest.len() && !rest[i + 1].starts_with("--") {
                kv.push((a, rest[i + 1].clone()));
                i += 2;
            } else {
                flags.push(a);
                i += 1;
            }
        }
        Some(Args { cmd, kv, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.kv
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_num<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.get(key)?.parse().ok()
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: kmm <conn|mst|st|mincut|stcon|bipart|gen> [--input FILE | --gen FAMILY] [--k K] [--seed S] ...\n\
         \n\
         conn    connected components (O~(n/k^2), Theorem 1)\n\
         mst     minimum spanning tree (Theorem 2; --both-endpoints for criterion (b))\n\
         st      spanning forest (no weight-elimination overhead)\n\
         mincut  O(log n)-approximate min cut (Theorem 3)\n\
         stcon   s-t connectivity (--s S --t T; Theorem 4)\n\
         bipart  bipartiteness via the double cover (Theorem 4)\n\
         gen     generate a graph file (--family ... --n N [--m M] [--p P] [--out FILE])\n\
         \n\
         input:  --input FILE            edge-list file (n m header, `u v [w]` lines)\n\
                 --gen FAMILY            streamed synthetic workload, no file; families:\n\
                                         gnm|gnp|path|cycle|grid|star|tree|connected\n\
                 --n N --m M --p P       family size parameters\n\
                 --extra E               extra non-tree edges for `connected`\n\
                 --max-weight W          random weights in [1, W]"
    );
    ExitCode::from(2)
}

fn load_graph(args: &Args) -> Result<Graph, String> {
    let path = args
        .get("input")
        .ok_or("missing --input (or --gen FAMILY for a streamed synthetic input)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    kmm::graph::io::from_edge_list(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// A lazy edge stream for `--gen FAMILY` runs. Validates the family
/// parameters up front: every bad value is a clean error, never a panic.
fn stream_from_args(args: &Args, seed: u64) -> Result<DynEdgeStream, String> {
    let family = args.get("gen").expect("caller checked --gen");
    let n: usize = args.get_num("n").ok_or("--gen needs --n")?;
    if n == 0 {
        return Err("--n must be at least 1".into());
    }
    let s = match family {
        "gnm" => {
            let m: usize = args.get_num("m").unwrap_or(4 * n);
            let max = n as u64 * (n as u64 - 1) / 2;
            if m as u64 > max {
                return Err(format!(
                    "--m {m} exceeds the {max} possible edges on {n} vertices"
                ));
            }
            generators::gnm_stream(n, m, seed)
        }
        "gnp" => {
            let p: f64 = args.get_num("p").unwrap_or(0.01);
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("--p {p} must lie in [0, 1]"));
            }
            generators::gnp_stream(n, p, seed)
        }
        "path" => generators::path_stream(n),
        "cycle" => generators::cycle_stream(n.max(3)),
        "grid" => {
            let side = (n as f64).sqrt().ceil() as usize;
            generators::grid_stream(side, side)
        }
        "star" => generators::star_stream(n.max(2)),
        "tree" => generators::random_tree_stream(n, seed),
        "connected" => {
            generators::random_connected_stream(n, args.get_num("extra").unwrap_or(n), seed)
        }
        other => return Err(format!("unknown --gen family {other}")),
    };
    match args.get_num::<u64>("max-weight") {
        Some(0) => Err("--max-weight must be at least 1".into()),
        Some(w) => Ok(generators::weighted_stream(s, w, seed ^ 1)),
        None => Ok(s),
    }
}

/// The sharded input every algorithm command runs against: either a parsed
/// edge-list file (sharded after parsing) or a `--gen` workload streamed
/// directly into per-machine shards. Streamed runs print the *effective*
/// graph size — families like `grid`, `cycle` and `star` round `--n` up to
/// the nearest shape that exists.
fn load_sharded(args: &Args, k: usize, seed: u64) -> Result<ShardedGraph, String> {
    if args.get("gen").is_some() {
        let stream = stream_from_args(args, seed)?;
        let sg = ShardedGraph::from_stream(stream, k, seed);
        println!("streamed input: n={} m={} k={k}", sg.n(), sg.m());
        Ok(sg)
    } else {
        let g = load_graph(args)?;
        let part = Partition::random_vertex(&g, k, seed);
        Ok(ShardedGraph::from_graph(&g, &part))
    }
}

fn main() -> ExitCode {
    let Some(args) = Args::parse() else {
        return usage();
    };
    let k: usize = args.get_num("k").unwrap_or(8);
    let seed: u64 = args.get_num("seed").unwrap_or(42);
    if args.cmd != "gen" && k < 2 {
        return fail("the k-machine model requires --k >= 2");
    }
    match args.cmd.as_str() {
        "conn" => {
            let sg = match load_sharded(&args, k, seed) {
                Ok(sg) => sg,
                Err(e) => return fail(&e),
            };
            let out = kmm::algo::connectivity::connected_components_sharded(
                &sg,
                seed,
                &ConnectivityConfig::default(),
            );
            println!("components: {}", out.component_count());
            println!("rounds:     {}", out.stats.rounds);
            println!("phases:     {}", out.phases);
            println!("total bits: {}", out.stats.total_bits);
        }
        "mst" => {
            let sg = match load_sharded(&args, k, seed) {
                Ok(sg) => sg,
                Err(e) => return fail(&e),
            };
            let cfg = MstConfig {
                criterion: if args.flag("both-endpoints") {
                    OutputCriterion::BothEndpoints
                } else {
                    OutputCriterion::AnyMachine
                },
                ..MstConfig::default()
            };
            let out = kmm::algo::mst::minimum_spanning_tree_sharded(&sg, seed, &cfg);
            println!("forest edges: {}", out.edges.len());
            println!("total weight: {}", out.total_weight);
            println!("rounds:       {}", out.stats.rounds);
            if args.flag("print-edges") {
                for e in &out.edges {
                    println!("{} {} {}", e.u, e.v, e.w);
                }
            }
        }
        "st" => {
            let sg = match load_sharded(&args, k, seed) {
                Ok(sg) => sg,
                Err(e) => return fail(&e),
            };
            let out = kmm::algo::st::spanning_forest_sharded(&sg, seed, &MstConfig::default());
            println!("forest edges: {}", out.edges.len());
            println!("rounds:       {}", out.stats.rounds);
        }
        "mincut" => {
            let sg = match load_sharded(&args, k, seed) {
                Ok(sg) => sg,
                Err(e) => return fail(&e),
            };
            let out =
                kmm::algo::mincut::approx_min_cut_sharded(&sg, seed, &MinCutConfig::default());
            println!("estimate: {}", out.estimate);
            println!("probes:   {}", out.probes);
            println!("rounds:   {}", out.stats.rounds);
        }
        "stcon" => {
            let g = match load_graph(&args) {
                Ok(g) => g,
                Err(e) => return fail(&e),
            };
            let (Some(s), Some(t)) = (args.get_num::<u32>("s"), args.get_num::<u32>("t")) else {
                return fail("stcon needs --s and --t");
            };
            if s as usize >= g.n() || t as usize >= g.n() {
                return fail("--s/--t out of range");
            }
            let v = verify::st_connectivity(&g, s, t, k, seed, &ConnectivityConfig::default());
            println!("connected: {}", v.holds);
            println!("rounds:    {}", v.stats.rounds);
        }
        "bipart" => {
            let g = match load_graph(&args) {
                Ok(g) => g,
                Err(e) => return fail(&e),
            };
            let v = verify::bipartiteness(&g, k, seed, &ConnectivityConfig::default());
            println!("bipartite: {}", v.holds);
            println!("rounds:    {}", v.stats.rounds);
        }
        "gen" => {
            let n: usize = match args.get_num("n") {
                Some(n) => n,
                None => return fail("gen needs --n"),
            };
            let g = match args.get("family").unwrap_or("gnm") {
                "gnm" => {
                    let m = args.get_num("m").unwrap_or(4 * n);
                    generators::gnm(n, m, seed)
                }
                "gnp" => {
                    let p: f64 = args.get_num("p").unwrap_or(0.01);
                    generators::gnp(n, p, seed)
                }
                "path" => generators::path(n),
                "cycle" => generators::cycle(n.max(3)),
                "grid" => {
                    let side = (n as f64).sqrt().ceil() as usize;
                    generators::grid(side, side)
                }
                "star" => generators::star(n.max(2)),
                other => return fail(&format!("unknown family {other}")),
            };
            let g = if let Some(w) = args.get_num::<u64>("max-weight") {
                generators::randomize_weights(&g, w, seed ^ 1)
            } else {
                g
            };
            let text = kmm::graph::io::to_edge_list(&g);
            match args.get("out") {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, text) {
                        return fail(&format!("write {path}: {e}"));
                    }
                    println!("wrote n={} m={} to {path}", g.n(), g.m());
                }
                None => print!("{text}"),
            }
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}
