//! `kmm` — command-line front end for the k-machine algorithms.
//!
//! ```text
//! kmm conn    --input graph.txt --k 16 [--seed 42]
//! kmm conn    --gen gnm --n 100000 --m 400000 --k 32     # streamed, no file
//! kmm mst     --input graph.txt --k 16 [--both-endpoints]
//! kmm st      --input graph.txt --k 16
//! kmm mincut  --input graph.txt --k 16
//! kmm stcon   --input graph.txt --k 16 --s 0 --t 5
//! kmm bipart  --input graph.txt --k 16
//! kmm gen     --family gnm --n 1000 --m 4000 --out graph.txt
//! ```
//!
//! The algorithm subcommands (`conn`, `mst`, `st`, `mincut`) all flow
//! through one generic runner over the session API: the input — either
//! `--input FILE` (the `kgraph::io` edge-list format) or `--gen FAMILY` (a
//! synthetic workload streamed straight into per-machine shards) — is
//! ingested exactly once into a `Cluster`, the selected `Problem` runs on
//! it, and the common `RunReport` trailer (rounds, total bits, wall time)
//! is printed after the problem-specific lines. Either way no central
//! graph copy is ever handed to an algorithm.

use kmm::algo::session::{Cluster, Connectivity, MinCut, Mst, Problem, SpanningForest};
use kmm::algo::verify;
use kmm::graph::stream::DynEdgeStream;
use kmm::prelude::*;
use std::process::ExitCode;

/// The algorithm/utility subcommands, in help order (kept next to `usage`
/// so unknown-subcommand errors can list exactly what exists).
const SUBCOMMANDS: &[&str] = &["conn", "mst", "st", "mincut", "stcon", "bipart", "gen"];

/// Minimal argument parser: `--key value` pairs plus boolean `--flag`s.
struct Args {
    cmd: String,
    kv: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse() -> Option<Args> {
        let mut it = std::env::args().skip(1);
        let cmd = it.next()?;
        let mut kv = Vec::new();
        let mut flags = Vec::new();
        let rest: Vec<String> = it.collect();
        let mut i = 0;
        while i < rest.len() {
            let a = rest[i].strip_prefix("--")?.to_string();
            if i + 1 < rest.len() && !rest[i + 1].starts_with("--") {
                kv.push((a, rest[i + 1].clone()));
                i += 2;
            } else {
                flags.push(a);
                i += 1;
            }
        }
        Some(Args { cmd, kv, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.kv
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_num<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.get(key)?.parse().ok()
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: kmm <{}> [--input FILE | --gen FAMILY] [--k K] [--seed S] ...\n\
         \n\
         conn    connected components (O~(n/k^2), Theorem 1)\n\
         mst     minimum spanning tree (Theorem 2; --both-endpoints for criterion (b))\n\
         st      spanning forest (no weight-elimination overhead)\n\
         mincut  O(log n)-approximate min cut (Theorem 3)\n\
         stcon   s-t connectivity (--s S --t T; Theorem 4)\n\
         bipart  bipartiteness via the double cover (Theorem 4)\n\
         gen     generate a graph file (--family ... --n N [--m M] [--p P] [--out FILE])\n\
         \n\
         input:  --input FILE            edge-list file (n m header, `u v [w]` lines)\n\
                 --gen FAMILY            streamed synthetic workload, no file; families:\n\
                                         gnm|gnp|path|cycle|grid|star|tree|connected\n\
                 --n N --m M --p P       family size parameters\n\
                 --extra E               extra non-tree edges for `connected`\n\
                 --max-weight W          random weights in [1, W]",
        SUBCOMMANDS.join("|")
    );
    ExitCode::from(2)
}

fn load_graph(args: &Args) -> Result<Graph, String> {
    let path = args
        .get("input")
        .ok_or("missing --input (or --gen FAMILY for a streamed synthetic input)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    kmm::graph::io::from_edge_list(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// A lazy edge stream for `--gen FAMILY` runs. Validates the family
/// parameters up front: every bad value is a clean error, never a panic.
fn stream_from_args(args: &Args, seed: u64) -> Result<DynEdgeStream, String> {
    let family = args.get("gen").expect("caller checked --gen");
    let n: usize = args.get_num("n").ok_or("--gen needs --n")?;
    if n == 0 {
        return Err("--n must be at least 1".into());
    }
    let s = match family {
        "gnm" => {
            let m: usize = args.get_num("m").unwrap_or(4 * n);
            let max = n as u64 * (n as u64 - 1) / 2;
            if m as u64 > max {
                return Err(format!(
                    "--m {m} exceeds the {max} possible edges on {n} vertices"
                ));
            }
            generators::gnm_stream(n, m, seed)
        }
        "gnp" => {
            let p: f64 = args.get_num("p").unwrap_or(0.01);
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("--p {p} must lie in [0, 1]"));
            }
            generators::gnp_stream(n, p, seed)
        }
        "path" => generators::path_stream(n),
        "cycle" => generators::cycle_stream(n.max(3)),
        "grid" => {
            let side = (n as f64).sqrt().ceil() as usize;
            generators::grid_stream(side, side)
        }
        "star" => generators::star_stream(n.max(2)),
        "tree" => generators::random_tree_stream(n, seed),
        "connected" => {
            generators::random_connected_stream(n, args.get_num("extra").unwrap_or(n), seed)
        }
        other => return Err(format!("unknown --gen family {other}")),
    };
    match args.get_num::<u64>("max-weight") {
        Some(0) => Err("--max-weight must be at least 1".into()),
        Some(w) => Ok(generators::weighted_stream(s, w, seed ^ 1)),
        None => Ok(s),
    }
}

/// The ingested cluster every algorithm subcommand runs against: either a
/// parsed edge-list file or a `--gen` workload streamed directly into
/// per-machine shards — one ingestion either way. Streamed runs print the
/// *effective* graph size — families like `grid`, `cycle` and `star` round
/// `--n` up to the nearest shape that exists.
fn cluster_from_args(args: &Args, k: usize, seed: u64) -> Result<Cluster, String> {
    let builder = Cluster::builder(k).seed(seed);
    if args.get("gen").is_some() {
        let stream = stream_from_args(args, seed)?;
        let cluster = builder.ingest_stream(stream);
        println!("streamed input: n={} m={} k={k}", cluster.n(), cluster.m());
        Ok(cluster)
    } else {
        Ok(builder.ingest_graph(&load_graph(args)?))
    }
}

/// The one generic algorithm runner behind `conn`/`mst`/`st`/`mincut`:
/// ingest into a cluster, run the problem, print its specific lines via
/// `print`, then the common report trailer.
fn run_problem<P: Problem>(
    args: &Args,
    k: usize,
    seed: u64,
    problem: P,
    print: impl FnOnce(&Args, &P::Output),
) -> ExitCode {
    let cluster = match cluster_from_args(args, k, seed) {
        Ok(cluster) => cluster,
        Err(e) => return fail(&e),
    };
    let run = cluster.run(problem);
    print(args, &run.output);
    println!("rounds:     {}", run.report.stats.rounds);
    println!("total bits: {}", run.report.stats.total_bits);
    println!("wall:       {:.1?}", run.report.wall);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let Some(args) = Args::parse() else {
        return usage();
    };
    let k: usize = args.get_num("k").unwrap_or(8);
    let seed: u64 = args.get_num("seed").unwrap_or(42);
    if args.cmd != "gen" && k < 2 {
        return fail("the k-machine model requires --k >= 2");
    }
    match args.cmd.as_str() {
        "conn" => run_problem(&args, k, seed, Connectivity::default(), |_, out| {
            println!("components: {}", out.component_count());
            println!("phases:     {}", out.phases);
        }),
        "mst" => {
            let cfg = MstConfig {
                criterion: if args.flag("both-endpoints") {
                    OutputCriterion::BothEndpoints
                } else {
                    OutputCriterion::AnyMachine
                },
                ..MstConfig::default()
            };
            run_problem(&args, k, seed, Mst::with(cfg), |args, out| {
                println!("forest edges: {}", out.edges.len());
                println!("total weight: {}", out.total_weight);
                if args.flag("print-edges") {
                    for e in &out.edges {
                        println!("{} {} {}", e.u, e.v, e.w);
                    }
                }
            })
        }
        "st" => run_problem(&args, k, seed, SpanningForest::default(), |_, out| {
            println!("forest edges: {}", out.edges.len());
        }),
        "mincut" => run_problem(&args, k, seed, MinCut::default(), |_, out| {
            println!("estimate: {}", out.estimate);
            println!("probes:   {}", out.probes);
        }),
        "stcon" => {
            let g = match load_graph(&args) {
                Ok(g) => g,
                Err(e) => return fail(&e),
            };
            let (Some(s), Some(t)) = (args.get_num::<u32>("s"), args.get_num::<u32>("t")) else {
                return fail("stcon needs --s and --t");
            };
            if s as usize >= g.n() || t as usize >= g.n() {
                return fail("--s/--t out of range");
            }
            let v = verify::st_connectivity(&g, s, t, k, seed, &ConnectivityConfig::default());
            println!("connected: {}", v.holds);
            println!("rounds:    {}", v.stats.rounds);
            ExitCode::SUCCESS
        }
        "bipart" => {
            let g = match load_graph(&args) {
                Ok(g) => g,
                Err(e) => return fail(&e),
            };
            let v = verify::bipartiteness(&g, k, seed, &ConnectivityConfig::default());
            println!("bipartite: {}", v.holds);
            println!("rounds:    {}", v.stats.rounds);
            ExitCode::SUCCESS
        }
        "gen" => {
            let n: usize = match args.get_num("n") {
                Some(n) => n,
                None => return fail("gen needs --n"),
            };
            let g = match args.get("family").unwrap_or("gnm") {
                "gnm" => {
                    let m = args.get_num("m").unwrap_or(4 * n);
                    generators::gnm(n, m, seed)
                }
                "gnp" => {
                    let p: f64 = args.get_num("p").unwrap_or(0.01);
                    generators::gnp(n, p, seed)
                }
                "path" => generators::path(n),
                "cycle" => generators::cycle(n.max(3)),
                "grid" => {
                    let side = (n as f64).sqrt().ceil() as usize;
                    generators::grid(side, side)
                }
                "star" => generators::star(n.max(2)),
                other => return fail(&format!("unknown family {other}")),
            };
            let g = if let Some(w) = args.get_num::<u64>("max-weight") {
                generators::randomize_weights(&g, w, seed ^ 1)
            } else {
                g
            };
            let text = kmm::graph::io::to_edge_list(&g);
            match args.get("out") {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, text) {
                        return fail(&format!("write {path}: {e}"));
                    }
                    println!("wrote n={} m={} to {path}", g.n(), g.m());
                }
                None => print!("{text}"),
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!(
                "error: unknown subcommand `{other}` (valid subcommands: {})",
                SUBCOMMANDS.join(", ")
            );
            usage()
        }
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}
