#![warn(missing_docs)]
//! # kmm — the k-machine model, connectivity & MST in large graphs
//!
//! Umbrella crate for the reproduction of Pandurangan, Robinson and
//! Scquizzato, *Fast Distributed Algorithms for Connectivity and MST in
//! Large Graphs* (SPAA 2016).
//!
//! Re-exports the workspace crates:
//!
//! * [`graph`] — input graphs, generators, partitions, sequential references.
//! * [`machine`] — the k-machine model simulator (rounds, bandwidth, metrics).
//! * [`sketch`] — linear graph sketches (ℓ₀-samplers).
//! * [`randomness`] — hash families and shared-randomness modelling.
//! * [`algo`] — the paper's distributed algorithms, baselines, and the
//!   lower-bound harness.
//!
//! ## Quickstart
//!
//! ```
//! use kmm::prelude::*;
//!
//! // A graph with two planted components, distributed over k = 4 machines.
//! let g = kmm::graph::generators::planted_components(200, 2, 3, 7);
//! let cfg = ConnectivityConfig::default();
//! let out = connected_components(&g, 4, 7, &cfg);
//! assert_eq!(out.component_count(), 2);
//! // Rounds and communication are fully accounted:
//! assert!(out.stats.rounds > 0);
//! ```
//!
//! ## Streaming ingestion at scale
//!
//! Large inputs never need a central edge list: a lazy
//! [`graph::stream::EdgeStream`] feeds [`graph::ShardedGraph`] directly,
//! and every algorithm has a `*_sharded` entry point over the per-machine
//! views (DESIGN.md §3.7).
//!
//! ```
//! use kmm::prelude::*;
//!
//! // Stream a connected workload straight into 8 per-machine shards.
//! let stream = kmm::graph::generators::random_connected_stream(2_000, 1_500, 5);
//! let sg = ShardedGraph::from_stream(stream, 8, 5);
//! let out = connected_components_sharded(&sg, 5, &ConnectivityConfig::default());
//! assert_eq!(out.component_count(), 1);
//! ```

pub use kconn as algo;
pub use kgraph as graph;
pub use kmachine as machine;
pub use krand as randomness;
pub use ksketch as sketch;

/// Common imports for examples and downstream users.
pub mod prelude {
    pub use kconn::connectivity::{
        connected_components, connected_components_sharded, ConnectivityConfig, ConnectivityOutput,
    };
    pub use kconn::mincut::{approx_min_cut, approx_min_cut_sharded, MinCutConfig};
    pub use kconn::mst::{
        minimum_spanning_tree, minimum_spanning_tree_sharded, MstConfig, OutputCriterion,
    };
    pub use kconn::st::{spanning_forest, spanning_forest_sharded};
    pub use kconn::verify;
    pub use kgraph::stream::{DynEdgeStream, EdgeStream};
    pub use kgraph::{generators, refalgo, Graph, Partition, PartitionKind, ShardedGraph};
    pub use kmachine::metrics::CommStats;
    pub use kmachine::{Bandwidth, CostModel};
}
