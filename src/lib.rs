#![warn(missing_docs)]
//! # kmm — the k-machine model, connectivity & MST in large graphs
//!
//! Umbrella crate for the reproduction of Pandurangan, Robinson and
//! Scquizzato, *Fast Distributed Algorithms for Connectivity and MST in
//! Large Graphs* (SPAA 2016).
//!
//! Re-exports the workspace crates:
//!
//! * [`graph`] — input graphs, generators, partitions, sequential references.
//! * [`machine`] — the k-machine model simulator (rounds, bandwidth, metrics).
//! * [`sketch`] — linear graph sketches (ℓ₀-samplers).
//! * [`randomness`] — hash families and shared-randomness modelling.
//! * [`algo`] — the paper's distributed algorithms, baselines, and the
//!   lower-bound harness.
//!
//! ## Quickstart
//!
//! ```
//! use kmm::prelude::*;
//!
//! // A graph with two planted components, distributed over k = 4 machines.
//! let g = kmm::graph::generators::planted_components(200, 2, 3, 7);
//! let cfg = ConnectivityConfig::default();
//! let out = connected_components(&g, 4, 7, &cfg);
//! assert_eq!(out.component_count(), 2);
//! // Rounds and communication are fully accounted:
//! assert!(out.stats.rounds > 0);
//! ```

pub use kconn as algo;
pub use kgraph as graph;
pub use kmachine as machine;
pub use krand as randomness;
pub use ksketch as sketch;

/// Common imports for examples and downstream users.
pub mod prelude {
    pub use kconn::connectivity::{connected_components, ConnectivityConfig, ConnectivityOutput};
    pub use kconn::mincut::{approx_min_cut, MinCutConfig};
    pub use kconn::mst::{minimum_spanning_tree, MstConfig, OutputCriterion};
    pub use kconn::st::spanning_forest;
    pub use kconn::verify;
    pub use kgraph::{generators, refalgo, Graph, Partition, PartitionKind};
    pub use kmachine::metrics::CommStats;
    pub use kmachine::{Bandwidth, CostModel};
}
