#![warn(missing_docs)]
//! # kmm — the k-machine model, connectivity & MST in large graphs
//!
//! Umbrella crate for the reproduction of Pandurangan, Robinson and
//! Scquizzato, *Fast Distributed Algorithms for Connectivity and MST in
//! Large Graphs* (SPAA 2016).
//!
//! Re-exports the workspace crates:
//!
//! * [`graph`] — input graphs, generators, partitions, sequential references.
//! * [`machine`] — the k-machine model simulator (rounds, bandwidth, metrics).
//! * [`sketch`] — linear graph sketches (ℓ₀-samplers).
//! * [`randomness`] — hash families and shared-randomness modelling.
//! * [`algo`] — the paper's distributed algorithms, baselines, and the
//!   lower-bound harness.
//! * [`check`] — the `kmm check` invariant linter (DESIGN.md §3.13).
//!
//! ## Quickstart: sessions
//!
//! The primary API mirrors the model: fix a cluster (k machines, seed,
//! bandwidth), ingest the input once, then run any number of algorithms on
//! it ([`algo::session`], DESIGN.md §3.8).
//!
//! ```
//! use kmm::prelude::*;
//!
//! // A graph with two planted components, ingested over k = 4 machines.
//! let g = kmm::graph::generators::planted_components(200, 2, 3, 7);
//! let cluster = Cluster::builder(4).seed(7).ingest_graph(&g);
//! let conn = cluster.run(Connectivity::default());
//! let st = cluster.run(SpanningForest::default());
//! assert_eq!(conn.output.component_count(), 2);
//! assert_eq!(st.output.edges.len(), 200 - 2);
//! // Every run carries the common report; rounds are fully accounted:
//! assert!(conn.report.stats.rounds > 0);
//! ```
//!
//! ## Streaming ingestion at scale
//!
//! Large inputs never need a central edge list: a lazy
//! [`graph::stream::EdgeStream`] feeds the cluster's per-machine
//! [`graph::ShardedGraph`] shards directly (DESIGN.md §3.7).
//!
//! ```
//! use kmm::prelude::*;
//!
//! // Stream a connected workload straight into 8 per-machine shards.
//! let stream = kmm::graph::generators::random_connected_stream(2_000, 1_500, 5);
//! let cluster = Cluster::builder(8).seed(5).ingest_stream(stream);
//! let out = cluster.run(Connectivity::default()).output;
//! assert_eq!(out.component_count(), 1);
//! ```

pub use kcheck as check;
pub use kconn as algo;
pub use kgraph as graph;
pub use kmachine as machine;
pub use krand as randomness;
pub use ksketch as sketch;

/// Common imports for examples and downstream users.
pub mod prelude {
    pub use kconn::connectivity::{
        connected_components, connected_components_sharded, ConnectivityConfig, ConnectivityOutput,
    };
    pub use kconn::dynamic::{
        DynConfig, DynamicCluster, RefreshKind, UpdateBatch, UpdateError, UpdateOp, UpdateReport,
    };
    pub use kconn::engine::RecoveryPolicy;
    pub use kconn::mincut::{approx_min_cut, approx_min_cut_sharded, MinCutConfig};
    pub use kconn::mst::{
        minimum_spanning_tree, minimum_spanning_tree_sharded, MstConfig, OutputCriterion,
    };
    pub use kconn::session::{
        Cluster, ClusterBuilder, Connectivity, EdgeBoruvka, EdgeBoruvkaConfig, Flooding, MinCut,
        Mst, Problem, Referee, RepMst, Run, RunReport, SpanningForest,
    };
    pub use kconn::st::{spanning_forest, spanning_forest_sharded};
    pub use kconn::verify;
    pub use kgraph::stream::{DynEdgeStream, EdgeStream};
    pub use kgraph::{generators, refalgo, Graph, Partition, PartitionKind, ShardedGraph};
    pub use kmachine::fault::{CrashEvent, FaultPlan};
    pub use kmachine::message::Encoding;
    pub use kmachine::metrics::CommStats;
    pub use kmachine::trace::{JsonlSink, TraceEvent, TraceRecord, TraceSink, Tracer};
    pub use kmachine::transport::TransportSel;
    pub use kmachine::{Bandwidth, CostModel};
}
