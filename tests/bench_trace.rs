//! CI pin for the tracing overhead family (DESIGN.md §4, E25): on the
//! E20 streamed rung, every tracing mode must return the tracing-off
//! baseline bit-for-bit with an identical logical ledger — the only
//! honest costs are wall-clock and the stream's own byte volume, both
//! captured in `results/BENCH_PR9.json`. Lives in the repo-root suite
//! next to the other snapshot writers.

use std::path::PathBuf;

use kbench::experiments::{records_to_json, ExperimentRecord};
use kbench::large::family;
use kbench::trace::measure;

#[test]
fn tracing_overhead_stays_inside_the_envelope_and_snapshots_the_costs() {
    let mut records: Vec<ExperimentRecord> = Vec::new();

    let s = &family(true)[0]; // n = 50_000, k = 16
    let ms = measure(&s.cluster());
    assert_eq!(ms.len(), 3);
    assert_eq!(ms[0].mode, "off");
    for m in &ms {
        assert!(m.identical, "{}/{}: answers diverged", s.id, m.mode);
        records.push(m.record("BENCH_PR9", s));
    }
    // The ledger must not see the tracer at all.
    for m in &ms[1..] {
        assert_eq!(ms[0].rounds, m.rounds, "{}: rounds", m.mode);
        assert_eq!(ms[0].total_bits, m.total_bits, "{}: total_bits", m.mode);
    }
    // Tracing off emits nothing; tracing on emits a non-trivial stream,
    // identical in volume whichever sink consumes it (the logical stream
    // is deterministic, so its JSONL has exactly one length).
    assert_eq!(ms[0].events, 0, "off mode must not buffer events");
    assert_eq!(ms[0].trace_bytes, 0);
    assert!(
        ms[1].events > 0 && ms[1].trace_bytes > 0,
        "recording is live"
    );
    assert_eq!(ms[1].events, ms[2].events, "same stream either sink");
    assert_eq!(ms[1].trace_bytes, ms[2].trace_bytes);
    // The overhead envelope: each traced mode stays within 5% of the
    // untraced wall plus a fixed grace absorbing scheduler noise on tiny
    // CI machines (the runs are seconds; the grace is a small fraction).
    for m in &ms[1..] {
        assert!(
            m.wall_ms <= ms[0].wall_ms * 1.05 + 250.0,
            "{}: tracing overhead out of envelope: {:.1}ms vs {:.1}ms off",
            m.mode,
            m.wall_ms,
            ms[0].wall_ms
        );
    }

    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results");
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    let out = dir.join("BENCH_PR9.json");
    std::fs::write(&out, records_to_json(&records))
        .unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
}
