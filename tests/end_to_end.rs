//! End-to-end integration tests: every distributed algorithm validated
//! against its exact sequential reference across graph families, machine
//! counts, and seeds.

use kmm::algo::baselines::edge_boruvka::edge_boruvka_mst;
use kmm::algo::baselines::flooding::flooding_connectivity;
use kmm::algo::baselines::referee::referee_connectivity;
use kmm::algo::baselines::rep_mst::rep_mst;
use kmm::machine::Bandwidth;
use kmm::prelude::*;

mod common;

/// The shared graph menagerie (tests/common/, also driven cell-by-cell by
/// the conformance suite).
fn families(seed: u64) -> Vec<(&'static str, Graph)> {
    common::graph_families(seed)
}

#[test]
fn connectivity_matches_union_find_across_families_and_k() {
    for (name, g) in families(11) {
        for k in [2usize, 5, 8] {
            let out = connected_components(&g, k, 1000 + k as u64, &ConnectivityConfig::default());
            let truth = refalgo::connected_components(&g);
            // Same-label iff same true component.
            let mut rep: std::collections::HashMap<u64, u32> = Default::default();
            for (v, &t) in truth.iter().enumerate() {
                let r = rep.entry(out.labels[v]).or_insert(t);
                assert_eq!(*r, t, "{name} k={k} vertex {v}");
            }
            assert_eq!(
                out.component_count(),
                refalgo::component_count(&g),
                "{name} k={k}"
            );
            assert_eq!(
                out.counted_components.unwrap() as usize,
                refalgo::component_count(&g),
                "{name} k={k}: §2.6 output protocol"
            );
        }
    }
}

#[test]
fn mst_matches_kruskal_across_families_and_k() {
    for (name, g) in families(23) {
        let g = generators::randomize_weights(&g, 5000, 77);
        for k in [2usize, 6] {
            let out = minimum_spanning_tree(&g, k, 2000 + k as u64, &MstConfig::default());
            let reference = refalgo::kruskal(&g);
            assert!(
                refalgo::is_spanning_forest(&g, &out.edges),
                "{name} k={k}: not a spanning forest"
            );
            assert_eq!(
                out.total_weight,
                refalgo::forest_weight(&reference),
                "{name} k={k}: weight mismatch"
            );
        }
    }
}

#[test]
fn all_connectivity_algorithms_agree() {
    let g = generators::planted_components(300, 3, 6, 5);
    let truth = refalgo::component_count(&g);
    let sketch = connected_components(&g, 6, 9, &ConnectivityConfig::default());
    assert_eq!(sketch.component_count(), truth);
    let flood = flooding_connectivity(&g, 6, 9, Bandwidth::default());
    assert_eq!(flood.component_count(), truth);
    let referee = referee_connectivity(&g, 6, 9, Bandwidth::default());
    let mut labels = referee.labels.clone();
    labels.sort_unstable();
    labels.dedup();
    assert_eq!(labels.len(), truth);
}

#[test]
fn all_mst_algorithms_agree_on_weight() {
    let g = generators::randomize_weights(&generators::random_connected(200, 400, 3), 999, 4);
    let expect = refalgo::forest_weight(&refalgo::kruskal(&g));
    let core = minimum_spanning_tree(&g, 4, 5, &MstConfig::default());
    assert_eq!(core.total_weight, expect, "sketch MST");
    let ghs = edge_boruvka_mst(&g, 4, 5, Bandwidth::default());
    assert_eq!(ghs.total_weight, expect, "edge-checking Borůvka");
    let rep = rep_mst(&g, 4, 5, &MstConfig::default());
    assert_eq!(rep.mst.total_weight, expect, "REP-model MST");
}

#[test]
fn bipartiteness_matches_two_coloring_reference() {
    use kmm::algo::verify::bipartiteness;
    let cases: Vec<(Graph, &str)> = vec![
        (generators::cycle(20), "even cycle"),
        (generators::cycle(21), "odd cycle"),
        (generators::grid(5, 7), "grid"),
        (generators::star(30), "star"),
        (generators::gnp(80, 0.08, 9), "gnp"),
        (generators::random_tree(90, 10), "tree"),
    ];
    for (i, (g, name)) in cases.into_iter().enumerate() {
        let expect = refalgo::bipartition(&g).is_some();
        let got = bipartiteness(&g, 4, 100 + i as u64, &ConnectivityConfig::default());
        assert_eq!(got.holds, expect, "{name}");
    }
}

#[test]
fn mincut_approximation_is_within_theorem3_bound() {
    for (seed, block, bridges, w) in [(1u64, 20usize, 2usize, 3u64), (2, 30, 5, 1), (3, 16, 1, 8)] {
        let g = generators::barbell(block, bridges, w, seed);
        let lambda = kmm::graph::mincut::stoer_wagner(&g).unwrap();
        assert_eq!(lambda, bridges as u64 * w);
        let out = approx_min_cut(&g, 4, seed + 50, &MinCutConfig::default());
        let logn = (g.n() as f64).log2();
        let est = out.estimate.max(1) as f64;
        let ratio = (est / lambda as f64).max(lambda as f64 / est);
        assert!(
            ratio <= 4.0 * logn,
            "seed {seed}: ratio {ratio:.1} vs O(log n)={logn:.1}"
        );
    }
}

#[test]
fn runs_are_deterministic_and_seed_sensitive() {
    let g = generators::gnp(300, 0.015, 42);
    let a = connected_components(&g, 6, 7, &ConnectivityConfig::default());
    let b = connected_components(&g, 6, 7, &ConnectivityConfig::default());
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.stats.rounds, b.stats.rounds);
    assert_eq!(a.stats.total_bits, b.stats.total_bits);
    let c = connected_components(&g, 6, 8, &ConnectivityConfig::default());
    // Different seed: same answer, different execution.
    assert_eq!(a.component_count(), c.component_count());
    assert_ne!(
        (a.stats.rounds, a.stats.total_bits),
        (c.stats.rounds, c.stats.total_bits),
        "different seeds should randomize the execution"
    );
}

#[test]
fn stats_invariants_hold() {
    let g = generators::gnm(400, 1200, 13);
    let out = connected_components(&g, 8, 14, &ConnectivityConfig::default());
    let s = &out.stats;
    let sent: u64 = s.sent_bits.iter().sum();
    let recv: u64 = s.recv_bits.iter().sum();
    // The modeled §2.2 seed charge adds to sent (machine 0) but has no
    // receiver; everything else must balance.
    assert!(sent >= recv);
    assert!(s.total_bits >= recv);
    assert!(s.rounds > 0);
    assert!(s.max_link_bits <= s.total_bits);
    assert!(s.messages > 0);
    let sum_rounds: u64 = s.superstep_loads.iter().map(|l| l.rounds).sum();
    assert!(
        sum_rounds <= s.rounds,
        "superstep rounds plus modeled charges"
    );
}

#[test]
fn monte_carlo_failure_injection_degrades_gracefully() {
    // Absurdly small sketches (1 repetition) make sampling failures common;
    // outputs must remain *valid* components (never merge across true
    // components), even if phases run to the cap.
    let g = generators::planted_components(150, 3, 4, 15);
    let cfg = ConnectivityConfig {
        reps: 1,
        ..ConnectivityConfig::default()
    };
    let out = connected_components(&g, 4, 16, &cfg);
    let truth = refalgo::connected_components(&g);
    for e in g.edges() {
        // Edges within a true component may end up split (missed merges),
        // but no label may ever span two true components.
        let (lu, lv) = (out.labels[e.u as usize], out.labels[e.v as usize]);
        let _ = (lu, lv);
    }
    let mut rep: std::collections::HashMap<u64, u32> = Default::default();
    for (v, &t) in truth.iter().enumerate() {
        let r = rep.entry(out.labels[v]).or_insert(t);
        assert_eq!(*r, t, "a label must never span two true components");
    }
}

#[test]
fn mst_both_criteria_agree_on_the_tree() {
    let g = generators::randomize_weights(&generators::grid(10, 10), 500, 17);
    let a = minimum_spanning_tree(
        &g,
        4,
        18,
        &MstConfig {
            criterion: OutputCriterion::AnyMachine,
            ..MstConfig::default()
        },
    );
    let b = minimum_spanning_tree(
        &g,
        4,
        18,
        &MstConfig {
            criterion: OutputCriterion::BothEndpoints,
            ..MstConfig::default()
        },
    );
    assert_eq!(a.edges, b.edges);
    assert!(b.stats.rounds >= a.stats.rounds);
}

#[test]
fn double_cover_partition_is_consistent() {
    let g = generators::gnp(100, 0.05, 19);
    let part = Partition::random_vertex(&g, 4, 20);
    let lifted = part.lifted_double_cover();
    for v in 0..g.n() as u32 {
        assert_eq!(part.home(v), lifted.home(v));
        assert_eq!(part.home(v), lifted.home(v + g.n() as u32));
    }
}
