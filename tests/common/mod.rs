//! Shared test support: the seeded scenario matrix every conformance test
//! drives the distributed algorithms through (DESIGN.md §5).
//!
//! A [`Scenario`] is one cell of the cross product
//!
//! ```text
//! graph family × machine count k × per-link bandwidth × master seed
//! ```
//!
//! plus the partition model an algorithm runs under (RVP by default; REP
//! for the §1.3 baseline). Everything is deterministic in the scenario
//! seed, so a failing cell reproduces exactly from its printed id.
//!
//! Each integration-test binary that declares `mod common;` compiles its
//! own copy of this module and typically uses a subset of it.
#![allow(dead_code)]

use kmm::machine::metrics::CommStats;
use kmm::prelude::*;

/// One cell of the conformance matrix.
pub struct Scenario {
    /// Human-readable cell id, printed by every assertion.
    pub id: String,
    /// Graph family name.
    pub family: &'static str,
    /// The input graph.
    pub g: Graph,
    /// Machine count `k ≥ 2`.
    pub k: usize,
    /// Per-link bandwidth policy.
    pub bandwidth: Bandwidth,
    /// Master seed (drives partition hashing and algorithm randomness).
    pub seed: u64,
}

impl Scenario {
    /// A session [`Cluster`] for this cell: the scenario graph ingested
    /// once under the cell's `(k, seed)`. Bit-identical to the one-shot
    /// entry points, so conformance tests dispatch every algorithm through
    /// it and may reuse one cluster across several algorithms.
    pub fn cluster(&self) -> Cluster {
        Cluster::builder(self.k)
            .seed(self.seed)
            .ingest_graph(&self.g)
    }

    /// A `ConnectivityConfig` with this scenario's bandwidth.
    pub fn conn_cfg(&self) -> ConnectivityConfig {
        ConnectivityConfig {
            bandwidth: self.bandwidth,
            ..ConnectivityConfig::default()
        }
    }

    /// An `MstConfig` with this scenario's bandwidth.
    pub fn mst_cfg(&self) -> MstConfig {
        MstConfig {
            bandwidth: self.bandwidth,
            ..MstConfig::default()
        }
    }

    /// A `MinCutConfig` with this scenario's bandwidth.
    pub fn mincut_cfg(&self) -> MinCutConfig {
        MinCutConfig {
            bandwidth: self.bandwidth,
            ..MinCutConfig::default()
        }
    }
}

/// The machine counts of the matrix (the model needs `k ≥ 2`).
pub const KS: [usize; 4] = [2, 3, 5, 8];

/// The master seeds of the matrix. Pinned: conformance runs are exactly
/// reproducible, and a cell that passes once passes forever.
pub const SEEDS: [u64; 2] = [3, 11];

/// The per-link bandwidth policies of the matrix: a tight fixed budget
/// (stress-tests multi-round message slicing) and the standard
/// `c·log²n`-bits polylog budget of the paper.
pub fn bandwidths() -> [Bandwidth; 2] {
    [Bandwidth::Bits(48), Bandwidth::PolylogSquared { c: 8 }]
}

/// The graph menagerie: structured topologies, random families, planted
/// multi-component inputs, a weighted family, and adversarial shapes
/// (star = the Theorem 2(b) bottleneck; barbell = known min cut).
pub fn graph_families(seed: u64) -> Vec<(&'static str, Graph)> {
    vec![
        ("path", generators::path(64)),
        ("cycle", generators::cycle(65)),
        ("grid", generators::grid(8, 9)),
        ("star", generators::star(64)),
        ("tree", generators::random_tree(110, seed ^ 0x7EE)),
        ("gnp-sparse", generators::gnp(150, 0.015, seed ^ 0x61)),
        ("gnm", generators::gnm(120, 260, seed ^ 0x62)),
        (
            "planted-2",
            generators::planted_components(120, 2, 4, seed ^ 0x63),
        ),
        (
            "planted-5",
            generators::planted_components(150, 5, 3, seed ^ 0x64),
        ),
        ("barbell", generators::barbell(24, 3, 5, seed ^ 0x65)),
        (
            "weighted-gnm",
            generators::randomize_weights(
                &generators::gnm(100, 220, seed ^ 0x66),
                1000,
                seed ^ 0x67,
            ),
        ),
        ("odd-cycle", generators::parity_cycle(33, true)),
        (
            "isolated-pairs",
            Graph::unweighted(40, [(0, 1), (2, 3), (4, 5)]),
        ),
    ]
}

/// The full conformance matrix: every family × every `k` × every bandwidth
/// × every seed. ~200 cells of small graphs — cheap enough that the
/// headline connectivity algorithm runs on all of them.
pub fn matrix() -> Vec<Scenario> {
    let mut out = Vec::new();
    for &seed in &SEEDS {
        for (family, g) in graph_families(seed) {
            for &k in &KS {
                for &bandwidth in &bandwidths() {
                    out.push(Scenario {
                        id: format!("{family}/k{k}/{bandwidth:?}/seed{seed}"),
                        family,
                        g: g.clone(),
                        k,
                        bandwidth,
                        seed,
                    });
                }
            }
        }
    }
    out
}

/// Every `stride`-th cell of [`matrix`], offset by `phase` — a deterministic
/// subsample for the more expensive algorithms. Cells are first scrambled
/// by a hash of their id, so a stride can never alias with an axis period
/// (striding the natural order by the k×bandwidth period would silently
/// drop whole axis values); every family, `k`, bandwidth and seed keeps
/// appearing in every subsample.
pub fn sub_matrix(stride: usize, phase: usize) -> Vec<Scenario> {
    let mut cells = matrix();
    cells.sort_by_key(|s| fnv1a(&s.id));
    cells
        .into_iter()
        .skip(phase)
        .step_by(stride.max(1))
        .collect()
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Model-accounting invariants every run must satisfy, whatever the
/// algorithm (DESIGN.md §3.1): bit conservation, per-link maxima bounded
/// by totals, and round/superstep consistency.
///
/// Two accounting paths are deliberately looser: `charge_modeled_rounds`
/// (the §2.2 shared-randomness charge) adds send bits and rounds without a
/// superstep record or receive bits, and `charge_barrier` adds a bare
/// round — so the per-superstep sums bound the totals from *below*.
pub fn assert_stats_sane(id: &str, stats: &CommStats, k: usize) {
    assert_eq!(stats.sent_bits.len(), k, "{id}: sent_bits arity");
    assert_eq!(stats.recv_bits.len(), k, "{id}: recv_bits arity");
    let sent: u64 = stats.sent_bits.iter().sum();
    let recv: u64 = stats.recv_bits.iter().sum();
    assert_eq!(sent, stats.total_bits, "{id}: sent bits must sum to total");
    assert!(
        recv <= stats.total_bits,
        "{id}: received bits ({recv}) cannot exceed total sent ({})",
        stats.total_bits
    );
    assert!(
        stats.max_link_bits <= stats.total_bits,
        "{id}: a single link cannot exceed the total ({} > {})",
        stats.max_link_bits,
        stats.total_bits
    );
    if stats.total_bits > 0 {
        assert!(stats.rounds > 0, "{id}: communication must cost rounds");
    }
    assert_eq!(
        stats.superstep_loads.len() as u64,
        stats.supersteps,
        "{id}: one load record per superstep"
    );
    let load_rounds: u64 = stats.superstep_loads.iter().map(|l| l.rounds).sum();
    let load_bits: u64 = stats.superstep_loads.iter().map(|l| l.total_bits).sum();
    let load_msgs: u64 = stats.superstep_loads.iter().map(|l| l.messages).sum();
    assert!(
        load_rounds <= stats.rounds,
        "{id}: superstep rounds ({load_rounds}) exceed the charged total ({})",
        stats.rounds
    );
    assert!(
        load_bits <= stats.total_bits,
        "{id}: superstep bits ({load_bits}) exceed the total ({})",
        stats.total_bits
    );
    assert_eq!(
        load_msgs, stats.messages,
        "{id}: per-superstep messages must sum"
    );
    for (i, l) in stats.superstep_loads.iter().enumerate() {
        assert!(
            l.max_link_bits <= l.total_bits,
            "{id}: superstep {i} link max exceeds its total"
        );
        assert!(
            l.total_bits == 0 || l.rounds >= 1,
            "{id}: superstep {i} moved bits for free"
        );
        assert!(
            stats.max_link_bits >= l.max_link_bits,
            "{id}: superstep {i} link max exceeds the cumulative max"
        );
    }
}

/// Whether two labelings induce the same partition of `0..n` (labels may
/// differ; the blocks may not). Returns the offending vertex pair on
/// mismatch so assertions print actionable ids. Generic: distributed
/// outputs label with `u64`, the union-find oracle with `u32`.
pub fn same_partition<A, B>(a: &[A], b: &[B]) -> Result<(), (usize, usize)>
where
    A: Copy + Eq + std::hash::Hash,
    B: Copy + Eq + std::hash::Hash,
{
    assert_eq!(
        a.len(),
        b.len(),
        "label vectors must cover the same vertices"
    );
    use std::collections::HashMap;
    let mut fwd: HashMap<A, (B, usize)> = HashMap::new();
    let mut bwd: HashMap<B, (A, usize)> = HashMap::new();
    for v in 0..a.len() {
        let (la, lb) = (a[v], b[v]);
        match fwd.get(&la) {
            None => {
                fwd.insert(la, (lb, v));
            }
            Some(&(mapped, first)) => {
                if mapped != lb {
                    return Err((first, v));
                }
            }
        }
        match bwd.get(&lb) {
            None => {
                bwd.insert(lb, (la, v));
            }
            Some(&(mapped, first)) => {
                if mapped != la {
                    return Err((first, v));
                }
            }
        }
    }
    Ok(())
}

/// Asserts component labels are *sound and complete* against the
/// union-find reference: identical partitions of the vertex set.
pub fn assert_labels_match_reference<T>(id: &str, got: &[T], g: &Graph)
where
    T: Copy + Eq + std::hash::Hash + std::fmt::Debug,
{
    let reference = refalgo::connected_components(g);
    if let Err((u, v)) = same_partition(got, &reference) {
        panic!(
            "{id}: labels disagree with union-find at vertices {u} and {v}: \
             got ({:?}, {:?}), reference ({}, {})",
            got[u], got[v], reference[u], reference[v]
        );
    }
}
