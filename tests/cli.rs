//! Integration tests for the `kmm` command-line binary.

use std::process::Command;

fn kmm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kmm"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("kmm-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn gen_then_analyze_roundtrip() {
    let path = tmp("grid.txt");
    let out = kmm()
        .args([
            "gen",
            "--family",
            "grid",
            "--n",
            "64",
            "--max-weight",
            "20",
            "--seed",
            "3",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("run gen");
    assert!(out.status.success(), "{out:?}");

    let conn = kmm()
        .args(["conn", "--input", path.to_str().unwrap(), "--k", "4"])
        .output()
        .expect("run conn");
    assert!(conn.status.success());
    let text = String::from_utf8_lossy(&conn.stdout);
    assert!(text.contains("components: 1"), "{text}");
    assert!(text.contains("rounds:"), "{text}");

    let mst = kmm()
        .args(["mst", "--input", path.to_str().unwrap(), "--k", "4"])
        .output()
        .expect("run mst");
    assert!(mst.status.success());
    let text = String::from_utf8_lossy(&mst.stdout);
    assert!(text.contains("forest edges: 63"), "{text}");

    let bip = kmm()
        .args(["bipart", "--input", path.to_str().unwrap(), "--k", "4"])
        .output()
        .expect("run bipart");
    let text = String::from_utf8_lossy(&bip.stdout);
    assert!(
        text.contains("bipartite: true"),
        "grids are bipartite: {text}"
    );

    let _ = std::fs::remove_file(path);
}

#[test]
fn stcon_answers_and_validates_args() {
    let path = tmp("path.txt");
    assert!(kmm()
        .args([
            "gen",
            "--family",
            "path",
            "--n",
            "30",
            "--out",
            path.to_str().unwrap()
        ])
        .status()
        .unwrap()
        .success());
    let ok = kmm()
        .args([
            "stcon",
            "--input",
            path.to_str().unwrap(),
            "--k",
            "4",
            "--s",
            "0",
            "--t",
            "29",
        ])
        .output()
        .unwrap();
    assert!(String::from_utf8_lossy(&ok.stdout).contains("connected: true"));
    let bad = kmm()
        .args([
            "stcon",
            "--input",
            path.to_str().unwrap(),
            "--k",
            "4",
            "--s",
            "0",
            "--t",
            "99",
        ])
        .output()
        .unwrap();
    assert!(!bad.status.success(), "out-of-range endpoint must fail");
    let _ = std::fs::remove_file(path);
}

#[test]
fn unknown_subcommand_prints_usage() {
    let out = kmm().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"));
    // The error names the offending word and lists every valid subcommand.
    assert!(err.contains("unknown subcommand `frobnicate`"), "{err}");
    for sub in ["conn", "mst", "st", "mincut", "stcon", "bipart", "gen"] {
        assert!(
            err.contains(sub),
            "valid subcommand {sub} must be listed: {err}"
        );
    }
}

#[test]
fn algorithm_commands_share_the_report_trailer() {
    // Every Problem subcommand flows through the same generic runner and
    // prints the common RunReport trailer after its specific lines.
    let path = tmp("trailer.txt");
    assert!(kmm()
        .args([
            "gen",
            "--family",
            "gnm",
            "--n",
            "60",
            "--m",
            "140",
            "--max-weight",
            "9",
            "--seed",
            "4",
            "--out",
            path.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    for cmd in ["conn", "mst", "st", "mincut"] {
        let out = kmm()
            .args([cmd, "--input", path.to_str().unwrap(), "--k", "4"])
            .output()
            .unwrap();
        assert!(out.status.success(), "{cmd}: {out:?}");
        let text = String::from_utf8_lossy(&out.stdout);
        for needle in ["rounds:", "total bits:", "wall:"] {
            assert!(text.contains(needle), "{cmd}: want {needle:?} in: {text}");
        }
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn k_below_two_is_a_clean_error() {
    let path = tmp("k1.txt");
    assert!(kmm()
        .args([
            "gen",
            "--family",
            "path",
            "--n",
            "10",
            "--out",
            path.to_str().unwrap()
        ])
        .status()
        .unwrap()
        .success());
    let out = kmm()
        .args(["conn", "--input", path.to_str().unwrap(), "--k", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("k >= 2"), "want a clean message, got: {err}");
    assert!(
        !err.contains("panicked"),
        "must not surface a Rust panic: {err}"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn missing_input_is_an_error() {
    let out = kmm().args(["conn", "--k", "4"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));
}

#[test]
fn cli_mst_edges_match_kruskal_oracle() {
    // Differential smoke: a weighted graph generated by the CLI, solved by
    // the CLI, checked against the sequential oracle through the library.
    let path = tmp("weighted.txt");
    assert!(kmm()
        .args([
            "gen",
            "--family",
            "gnm",
            "--n",
            "80",
            "--m",
            "200",
            "--max-weight",
            "500",
            "--seed",
            "9",
            "--out",
            path.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    let g = kmm::graph::io::from_edge_list(&std::fs::read_to_string(&path).unwrap())
        .expect("parse generated file");
    let out = kmm()
        .args([
            "mst",
            "--input",
            path.to_str().unwrap(),
            "--k",
            "5",
            "--print-edges",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let edges: Vec<kmm::graph::graph::Edge> = text
        .lines()
        .filter_map(|l| {
            let mut it = l.split_whitespace();
            let (u, v, w) = (it.next()?, it.next()?, it.next()?);
            Some(kmm::graph::graph::Edge::new(
                u.parse().ok()?,
                v.parse().ok()?,
                w.parse().ok()?,
            ))
        })
        .collect();
    assert!(
        kmm::graph::refalgo::is_spanning_forest(&g, &edges),
        "{text}"
    );
    assert_eq!(
        kmm::graph::refalgo::forest_weight(&edges),
        kmm::graph::refalgo::forest_weight(&kmm::graph::refalgo::kruskal(&g)),
        "CLI MST weight must equal Kruskal"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn parse_errors_report_line_numbers_without_panicking() {
    // Duplicate edge, malformed edge, out-of-range endpoint: each must be
    // a clean error naming the offending line, never a Rust panic.
    for (name, body, needle) in [
        ("dup", "3 2\n0 1\n1 0 9\n", "line 3"),
        ("badedge", "3 1\n0 zzz\n", "line 2"),
        ("range", "3 1\n0 7\n", "line 2"),
        ("selfloop", "3 1\n1 1\n", "line 2"),
        ("header", "not a header\n", "header"),
    ] {
        let path = tmp(&format!("bad-{name}.txt"));
        std::fs::write(&path, body).unwrap();
        let out = kmm()
            .args(["conn", "--input", path.to_str().unwrap(), "--k", "4"])
            .output()
            .unwrap();
        assert!(!out.status.success(), "{name}: must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "{name}: want {needle:?} in: {err}");
        assert!(!err.contains("panicked"), "{name}: must not panic: {err}");
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn hostile_edge_count_header_fails_cleanly() {
    let path = tmp("hostile.txt");
    std::fs::write(&path, "4 123456789012345678\n0 1\n").unwrap();
    let out = kmm()
        .args(["conn", "--input", path.to_str().unwrap(), "--k", "4"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("declared"),
        "want a count mismatch, got: {err}"
    );
    assert!(!err.contains("panicked"), "must not abort/panic: {err}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn streamed_gen_input_runs_without_a_file() {
    // The streaming path: a synthetic workload sharded directly, no edge
    // list on disk or in memory.
    let conn = kmm()
        .args([
            "conn", "--gen", "gnm", "--n", "2000", "--m", "6000", "--k", "8", "--seed", "5",
        ])
        .output()
        .unwrap();
    assert!(conn.status.success(), "{conn:?}");
    let text = String::from_utf8_lossy(&conn.stdout);
    assert!(text.contains("components:"), "{text}");
    assert!(text.contains("rounds:"), "{text}");

    let mst = kmm()
        .args([
            "mst",
            "--gen",
            "connected",
            "--n",
            "500",
            "--extra",
            "400",
            "--max-weight",
            "100",
            "--k",
            "4",
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(mst.status.success(), "{mst:?}");
    let text = String::from_utf8_lossy(&mst.stdout);
    assert!(
        text.contains("forest edges: 499"),
        "a connected 500-vertex graph has a 499-edge MST: {text}"
    );

    let bad = kmm()
        .args(["conn", "--gen", "nosuch", "--n", "10", "--k", "4"])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown --gen family"));
}

#[test]
fn gen_parameter_validation_never_panics() {
    // Out-of-range family parameters must be clean errors, same standard
    // as file-input parse failures.
    for (name, extra_args, needle) in [
        (
            "too-many-edges",
            vec!["--gen", "gnm", "--n", "4"],
            "possible edges",
        ),
        (
            "p-out-of-range",
            vec!["--gen", "gnp", "--n", "50", "--p", "1.5"],
            "[0, 1]",
        ),
        ("zero-n", vec!["--gen", "path", "--n", "0"], "--n"),
        (
            "zero-weight",
            vec!["--gen", "path", "--n", "10", "--max-weight", "0"],
            "--max-weight",
        ),
    ] {
        let mut args = vec!["conn", "--k", "4"];
        args.extend(extra_args);
        let out = kmm().args(&args).output().unwrap();
        assert!(!out.status.success(), "{name}: must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "{name}: want {needle:?} in: {err}");
        assert!(!err.contains("panicked"), "{name}: must not panic: {err}");
    }
}

#[test]
fn gen_reports_effective_graph_size() {
    // Families that round --n to the nearest valid shape must say so: the
    // streamed-input banner carries the effective n and m.
    let out = kmm()
        .args(["conn", "--gen", "grid", "--n", "1000", "--k", "4"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("streamed input: n=1024"),
        "grid rounds 1000 up to 32x32 = 1024 and must report it: {text}"
    );
}

#[test]
fn streamed_and_file_inputs_agree() {
    // The same seeded workload through both ingestion paths must give the
    // same component count (identical graphs, identical partition seed).
    let path = tmp("parity.txt");
    assert!(kmm()
        .args([
            "gen",
            "--family",
            "gnm",
            "--n",
            "600",
            "--m",
            "900",
            "--seed",
            "9",
            "--out",
            path.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    let from_file = kmm()
        .args([
            "conn",
            "--input",
            path.to_str().unwrap(),
            "--k",
            "4",
            "--seed",
            "9",
        ])
        .output()
        .unwrap();
    let from_stream = kmm()
        .args([
            "conn", "--gen", "gnm", "--n", "600", "--m", "900", "--k", "4", "--seed", "9",
        ])
        .output()
        .unwrap();
    assert!(from_file.status.success() && from_stream.status.success());
    let line = |out: &std::process::Output| {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find(|l| l.starts_with("components:"))
            .unwrap()
            .to_string()
    };
    assert_eq!(line(&from_file), line(&from_stream));
    let _ = std::fs::remove_file(path);
}

#[test]
fn gen_to_stdout_parses_back() {
    let out = kmm()
        .args(["gen", "--family", "cycle", "--n", "12"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let g = kmm::graph::io::from_edge_list(&text).expect("parse generated output");
    assert_eq!(g.n(), 12);
    assert_eq!(g.m(), 12);
}

// ---------------------------------------------------------------------
// The dynamic subcommand and the machine-readable report.
// ---------------------------------------------------------------------

#[test]
fn dyn_replays_a_trace_with_per_batch_trailers() {
    let trace = tmp("churn.trace");
    std::fs::write(
        &trace,
        "# close the ring, cut twice, resurrect\n+ 0 19 5\n---\n- 0 19\n- 3 4\n---\n+ 3 4 2\n",
    )
    .unwrap();
    let out = kmm()
        .args([
            "dyn",
            "--gen",
            "path",
            "--n",
            "20",
            "--k",
            "3",
            "--seed",
            "7",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("run dyn");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("base solve:"), "{text}");
    for b in 1..=3 {
        assert!(text.contains(&format!("batch {b}:")), "{text}");
    }
    // A path is one component; cutting (3,4) after deleting the inserted
    // bridge leaves two; re-inserting heals it.
    assert!(text.contains("components:   2"), "{text}");
    let healed = text
        .lines()
        .filter(|l| l.contains("components:   1"))
        .count();
    assert!(
        healed >= 2,
        "base and final solves see one component: {text}"
    );
    assert!(text.contains("replayed 3 batches"), "{text}");
    let _ = std::fs::remove_file(trace);
}

#[test]
fn dyn_rejects_invalid_traces_cleanly() {
    let trace = tmp("bad.trace");
    // Line 2 is malformed.
    std::fs::write(&trace, "+ 1 2\n* what\n").unwrap();
    let out = kmm()
        .args([
            "dyn",
            "--gen",
            "path",
            "--n",
            "10",
            "--k",
            "2",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2"), "{err}");

    // A well-formed trace whose op is semantically invalid fails with the
    // batch number and the validation error, not a panic.
    std::fs::write(&trace, "- 0 9\n").unwrap();
    let out = kmm()
        .args([
            "dyn",
            "--gen",
            "path",
            "--n",
            "10",
            "--k",
            "2",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("batch 1"), "{err}");
    assert!(err.contains("absent edge"), "{err}");

    let missing = kmm()
        .args(["dyn", "--gen", "path", "--n", "10", "--k", "2"])
        .output()
        .unwrap();
    assert!(!missing.status.success());
    assert!(
        String::from_utf8_lossy(&missing.stderr).contains("--trace"),
        "must ask for the trace file"
    );
    let _ = std::fs::remove_file(trace);
}

#[test]
fn report_json_is_machine_readable() {
    let out = kmm()
        .args([
            "conn", "--gen", "gnm", "--n", "200", "--m", "500", "--k", "4", "--report", "json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // Exactly one line, a JSON object with the RunReport fields; the
    // human-readable lines are suppressed.
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines.len(),
        1,
        "json mode prints exactly one object: {text}"
    );
    let obj = lines[0];
    assert!(obj.starts_with('{') && obj.ends_with('}'), "{obj}");
    for field in [
        "\"problem\": \"conn\"",
        "\"components\": ", // the answer rides along, not just the costs
        "\"rounds\": ",
        "\"total_bits\": ",
        "\"sketch_builds\": ",
        "\"update_bits\": 0",
        "\"wall_ms\": ",
    ] {
        assert!(obj.contains(field), "missing {field} in {obj}");
    }

    // dyn emits one object per solve, each tagged with its batch index.
    let trace = tmp("json.trace");
    std::fs::write(&trace, "+ 0 5 2\n---\n- 0 5\n").unwrap();
    let out = kmm()
        .args([
            "dyn",
            "--gen",
            "cycle",
            "--n",
            "12",
            "--k",
            "2",
            "--trace",
            trace.to_str().unwrap(),
            "--report",
            "json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "base + two batches: {text}");
    for (i, line) in lines.iter().enumerate() {
        assert!(line.contains(&format!("\"batch\": {i}")), "{line}");
        assert!(line.contains("\"components\": "), "{line}");
        assert!(line.contains("\"forest_edges\": "), "{line}");
    }
    let _ = std::fs::remove_file(trace);
}

#[test]
fn unknown_report_format_is_a_clean_error() {
    let out = kmm()
        .args([
            "conn", "--gen", "path", "--n", "20", "--k", "2", "--report", "JSON",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "typo'd format must not fall back");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown --report format"), "{err}");
    assert!(
        err.contains("json"),
        "must name the supported format: {err}"
    );
}

#[test]
fn faults_flag_survives_and_reports_recovery() {
    // The same streamed workload with and without --faults: the answer
    // lines must match exactly; the faulted run additionally reports the
    // fault/recovery trailer (and nonzero counters under --report json).
    let base = [
        "conn", "--gen", "gnm", "--n", "3000", "--m", "9000", "--k", "8", "--seed", "5",
    ];
    let clean = kmm().args(base).output().expect("run conn");
    assert!(clean.status.success(), "{clean:?}");
    let clean_text = String::from_utf8_lossy(&clean.stdout).to_string();
    let faulted = kmm()
        .args(base)
        .args(["--faults", "drop=0.1,dup=0.05,crash=2@9,seed=3"])
        .output()
        .expect("run faulted conn");
    assert!(faulted.status.success(), "{faulted:?}");
    let text = String::from_utf8_lossy(&faulted.stdout).to_string();
    let line = |t: &str, key: &str| {
        t.lines()
            .find(|l| l.starts_with(key))
            .unwrap_or_else(|| panic!("missing `{key}` in:\n{t}"))
            .to_string()
    };
    assert_eq!(
        line(&clean_text, "components:"),
        line(&text, "components:"),
        "faults must not change the answer"
    );
    assert_eq!(line(&clean_text, "phases:"), line(&text, "phases:"));
    assert!(text.contains("faults:"), "{text}");
    assert!(text.contains("recovery:"), "{text}");
    assert!(
        !clean_text.contains("faults:"),
        "no fault trailer without --faults:\n{clean_text}"
    );

    let json = kmm()
        .args(base)
        .args(["--faults", "drop=0.1,seed=3", "--report", "json"])
        .output()
        .expect("run json conn");
    assert!(json.status.success());
    let body = String::from_utf8_lossy(&json.stdout).to_string();
    for key in [
        "\"faults_injected\": ",
        "\"retransmit_bits\": ",
        "\"recovery_rounds\": ",
    ] {
        let v = body
            .split(key)
            .nth(1)
            .unwrap_or_else(|| panic!("missing {key} in {body}"))
            .split([',', '}'])
            .next()
            .unwrap()
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("non-numeric {key} in {body}"));
        assert!(v > 0, "{key} must be nonzero under a drop plan: {body}");
    }
}

#[test]
fn bad_faults_spec_is_a_clean_error() {
    for bad in ["drop=1.0", "drop=oops", "nonsense=3", "crash=2"] {
        let out = kmm()
            .args([
                "conn", "--gen", "path", "--n", "50", "--k", "2", "--faults", bad,
            ])
            .output()
            .expect("run");
        assert!(!out.status.success(), "`--faults {bad}` must fail cleanly");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--faults"), "{err}");
        assert!(!err.contains("panicked"), "{err}");
    }
}
