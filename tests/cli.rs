//! Integration tests for the `kmm` command-line binary.

use std::process::Command;

fn kmm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kmm"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("kmm-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn gen_then_analyze_roundtrip() {
    let path = tmp("grid.txt");
    let out = kmm()
        .args([
            "gen",
            "--family",
            "grid",
            "--n",
            "64",
            "--max-weight",
            "20",
            "--seed",
            "3",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("run gen");
    assert!(out.status.success(), "{:?}", out);

    let conn = kmm()
        .args(["conn", "--input", path.to_str().unwrap(), "--k", "4"])
        .output()
        .expect("run conn");
    assert!(conn.status.success());
    let text = String::from_utf8_lossy(&conn.stdout);
    assert!(text.contains("components: 1"), "{text}");
    assert!(text.contains("rounds:"), "{text}");

    let mst = kmm()
        .args(["mst", "--input", path.to_str().unwrap(), "--k", "4"])
        .output()
        .expect("run mst");
    assert!(mst.status.success());
    let text = String::from_utf8_lossy(&mst.stdout);
    assert!(text.contains("forest edges: 63"), "{text}");

    let bip = kmm()
        .args(["bipart", "--input", path.to_str().unwrap(), "--k", "4"])
        .output()
        .expect("run bipart");
    let text = String::from_utf8_lossy(&bip.stdout);
    assert!(text.contains("bipartite: true"), "grids are bipartite: {text}");

    let _ = std::fs::remove_file(path);
}

#[test]
fn stcon_answers_and_validates_args() {
    let path = tmp("path.txt");
    assert!(kmm()
        .args([
            "gen", "--family", "path", "--n", "30", "--out",
            path.to_str().unwrap()
        ])
        .status()
        .unwrap()
        .success());
    let ok = kmm()
        .args([
            "stcon", "--input", path.to_str().unwrap(), "--k", "4", "--s", "0", "--t", "29",
        ])
        .output()
        .unwrap();
    assert!(String::from_utf8_lossy(&ok.stdout).contains("connected: true"));
    let bad = kmm()
        .args([
            "stcon", "--input", path.to_str().unwrap(), "--k", "4", "--s", "0", "--t", "99",
        ])
        .output()
        .unwrap();
    assert!(!bad.status.success(), "out-of-range endpoint must fail");
    let _ = std::fs::remove_file(path);
}

#[test]
fn unknown_subcommand_prints_usage() {
    let out = kmm().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn missing_input_is_an_error() {
    let out = kmm().args(["conn", "--k", "4"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));
}

#[test]
fn gen_to_stdout_parses_back() {
    let out = kmm()
        .args(["gen", "--family", "cycle", "--n", "12"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let g = kmm::graph::io::from_edge_list(&text).expect("parse generated output");
    assert_eq!(g.n(), 12);
    assert_eq!(g.m(), 12);
}
