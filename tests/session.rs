//! The session API contract (ISSUE 3 acceptance):
//!
//! (a) **Cluster reuse is bit-identical to the one-shot entry points.**
//!     Running connectivity, then MST, then spanning forest on *one*
//!     ingested `Cluster` produces exactly the labels, edges, rounds and
//!     bits of the legacy per-call entry points — and of the `*_sharded`
//!     functions on independently built shards — on every graph family of
//!     the scenario matrix (`sub_matrix` provably keeps every family, `k`,
//!     bandwidth and seed represented).
//!
//! (b) **Shims and sessions agree on `RunReport` comm stats**, field by
//!     field, not just on the answer.
//!
//! (c) **Ingestion happens exactly once per cluster**, however many
//!     algorithms run on it — pinned via the thread-local shard-build
//!     counter `kgraph::sharded::ingest_count`.

mod common;

use common::{assert_stats_sane, sub_matrix};
use kmm::graph::sharded::ingest_count;
use kmm::prelude::*;

/// (a): one cluster, three algorithms, bit-for-bit against both the legacy
/// one-shot front ends and the `*_sharded` entry points on shards built
/// independently of the session layer.
#[test]
fn cluster_reuse_is_bit_identical_to_one_shot_paths() {
    for s in sub_matrix(4, 1) {
        let cluster = s.cluster();
        let conn = cluster.run(Connectivity::with(s.conn_cfg()));
        let mst = cluster.run(Mst::with(s.mst_cfg()));
        let st = cluster.run(SpanningForest::with(s.mst_cfg()));
        assert_eq!(cluster.runs(), 3, "{}: three runs recorded", s.id);

        // The legacy one-shot front ends (each re-ingests internally).
        let conn1 = connected_components(&s.g, s.k, s.seed, &s.conn_cfg());
        let mst1 = minimum_spanning_tree(&s.g, s.k, s.seed, &s.mst_cfg());
        let st1 = spanning_forest(&s.g, s.k, s.seed, &s.mst_cfg());
        assert_eq!(conn.output.labels, conn1.labels, "{}: conn labels", s.id);
        assert_eq!(
            conn.output.stats.rounds, conn1.stats.rounds,
            "{}: conn rounds",
            s.id
        );
        assert_eq!(
            conn.output.stats.total_bits, conn1.stats.total_bits,
            "{}: conn bits",
            s.id
        );
        assert_eq!(
            (conn.output.sketch_builds, conn.output.sketch_cache_hits),
            (conn1.sketch_builds, conn1.sketch_cache_hits),
            "{}: conn sketch counters",
            s.id
        );
        assert_eq!(mst.output.edges, mst1.edges, "{}: MST edges", s.id);
        assert_eq!(
            mst.output.stats.rounds, mst1.stats.rounds,
            "{}: MST rounds",
            s.id
        );
        assert_eq!(st.output.edges, st1.edges, "{}: forest edges", s.id);
        assert_eq!(
            st.output.stats.total_bits, st1.stats.total_bits,
            "{}: forest bits",
            s.id
        );

        // The sharded entry points on shards built without the session
        // layer — the path that existed before this API.
        let part = Partition::random_vertex(&s.g, s.k, s.seed);
        let sg = ShardedGraph::from_graph(&s.g, &part);
        let conn2 = connected_components_sharded(&sg, s.seed, &s.conn_cfg());
        let mst2 = minimum_spanning_tree_sharded(&sg, s.seed, &s.mst_cfg());
        assert_eq!(conn.output.labels, conn2.labels, "{}: sharded conn", s.id);
        assert_eq!(mst.output.edges, mst2.edges, "{}: sharded MST", s.id);
        assert_eq!(
            mst.output.stats.rounds, mst2.stats.rounds,
            "{}: sharded MST rounds",
            s.id
        );

        // Every report passes the model-accounting invariants.
        assert_stats_sane(&s.id, &conn.report.stats, s.k);
        assert_stats_sane(&s.id, &mst.report.stats, s.k);
        assert_stats_sane(&s.id, &st.report.stats, s.k);
    }
}

/// (b): the shim output's stats and the session `RunReport` stats agree
/// field by field (including the per-machine vectors), for a headliner and
/// for a baseline.
#[test]
fn shims_and_session_agree_on_run_report_comm_stats() {
    for s in sub_matrix(5, 2) {
        let cluster = s.cluster();
        let run = cluster.run(Connectivity::with(s.conn_cfg()));
        let shim = connected_components(&s.g, s.k, s.seed, &s.conn_cfg());
        let (a, b) = (&run.report.stats, &shim.stats);
        assert_eq!(a.rounds, b.rounds, "{}: rounds", s.id);
        assert_eq!(a.supersteps, b.supersteps, "{}: supersteps", s.id);
        assert_eq!(a.messages, b.messages, "{}: messages", s.id);
        assert_eq!(a.total_bits, b.total_bits, "{}: total bits", s.id);
        assert_eq!(a.max_link_bits, b.max_link_bits, "{}: max link", s.id);
        assert_eq!(a.sent_bits, b.sent_bits, "{}: per-machine sent", s.id);
        assert_eq!(a.recv_bits, b.recv_bits, "{}: per-machine recv", s.id);
        assert_eq!(run.report.problem, "conn", "{}: report name", s.id);
        assert_eq!(run.report.phases, shim.phases, "{}: report phases", s.id);

        let flood_run = cluster.run(Flooding::with(s.bandwidth));
        let flood_shim =
            kmm::algo::baselines::flooding::flooding_connectivity(&s.g, s.k, s.seed, s.bandwidth);
        assert_eq!(
            flood_run.report.stats.rounds, flood_shim.stats.rounds,
            "{}: flooding rounds",
            s.id
        );
        assert_eq!(
            flood_run.report.stats.total_bits, flood_shim.stats.total_bits,
            "{}: flooding bits",
            s.id
        );
        assert_eq!(
            flood_run.report.phases, flood_shim.graph_rounds,
            "{}: flooding graph-rounds surface as report phases",
            s.id
        );
    }
}

/// (c): the shard-build counter advances exactly once per cluster, however
/// many problems run on it. (The counter is thread-local, so concurrently
/// running tests in this binary cannot interfere.)
#[test]
fn cluster_ingests_exactly_once() {
    let g = generators::randomize_weights(&generators::gnm(200, 600, 5), 100, 6);
    let before = ingest_count();
    let cluster = Cluster::builder(4).seed(9).ingest_graph(&g);
    assert_eq!(
        ingest_count(),
        before + 1,
        "building the cluster ingests once"
    );
    let _ = cluster.run(Connectivity::default());
    let _ = cluster.run(Mst::default());
    let _ = cluster.run(SpanningForest::default());
    let _ = cluster.run(MinCut::default());
    let _ = cluster.run(Flooding::default());
    let _ = cluster.run(Referee::default());
    let _ = cluster.run(EdgeBoruvka::default());
    assert_eq!(
        ingest_count(),
        before + 1,
        "running seven problems must not re-shard the input"
    );
    assert_eq!(cluster.runs(), 7);

    // Contrast: each legacy one-shot call pays one ingestion.
    let _ = connected_components(&g, 4, 9, &ConnectivityConfig::default());
    let _ = minimum_spanning_tree(&g, 4, 9, &MstConfig::default());
    assert_eq!(
        ingest_count(),
        before + 3,
        "one-shot front ends re-ingest per call — the cost the session API amortizes"
    );
}

/// Streamed and materialized ingestion build the same cluster: same shard
/// contents, same downstream bits.
#[test]
fn streamed_and_materialized_clusters_agree() {
    let (k, seed) = (5, 31);
    let builder = Cluster::builder(k).seed(seed);
    let streamed = builder.ingest_stream(generators::random_connected_stream(600, 400, 8));
    let materialized = builder.ingest_graph(&generators::random_connected(600, 400, 8));
    let a = streamed.run(Connectivity::default());
    let b = materialized.run(Connectivity::default());
    assert_eq!(a.output.labels, b.output.labels);
    assert_eq!(a.report.stats.rounds, b.report.stats.rounds);
    assert_eq!(a.report.stats.total_bits, b.report.stats.total_bits);
    let ma = streamed.run(Mst::default());
    let mb = materialized.run(Mst::default());
    assert_eq!(ma.output.edges, mb.output.edges);
}

/// The REP baseline's new sharded path flows through the session too, and
/// still matches the Kruskal oracle on a reused cluster.
#[test]
fn rep_mst_runs_on_a_reused_cluster() {
    let g = generators::randomize_weights(&generators::gnm(180, 700, 13), 300, 14);
    let cluster = Cluster::builder(6).seed(15).ingest_graph(&g);
    let rvp = cluster.run(Mst::default());
    let rep = cluster.run(RepMst::default());
    let want = refalgo::forest_weight(&refalgo::kruskal(&g));
    assert_eq!(rvp.output.total_weight as u128, want as u128);
    assert_eq!(rep.output.mst.total_weight as u128, want as u128);
    // The REP pipeline pays its Θ~(n/k) routing stage on top.
    assert!(rep.output.routing.rounds > 0);
    assert_eq!(rep.report.problem, "rep-mst");
    // And the shim agrees bit for bit.
    let shim = kmm::algo::baselines::rep_mst::rep_mst(&g, 6, 15, &MstConfig::default());
    assert_eq!(shim.mst.edges, rep.output.mst.edges);
    assert_eq!(shim.mst.stats.rounds, rep.output.mst.stats.rounds);
}
