//! Differential pin of the dynamic update subsystem (DESIGN.md §3.9):
//! for every scenario-matrix graph family, a live [`DynamicCluster`]
//! replays ≥ 4 update batches (insert-heavy, delete-heavy, churn,
//! reweight), and after *each* batch its Connectivity, SpanningForest and
//! Mst answers must be **bit-identical** to a fresh static `Cluster::run`
//! on the mutated edge set — plus sound against the sequential oracles,
//! with the model-accounting invariants intact, fault-free and under a
//! chaos cell.
//!
//! Also property-tests the storage layer: staged deltas + compaction must
//! reproduce fresh ingestion of the mutated edge sequence exactly, and the
//! per-shard `O(m/k + Δ)` bound must survive arbitrary churn.

mod common;

use common::{
    assert_labels_match_reference, assert_stats_sane, bandwidths, graph_families, KS, SEEDS,
};
use kmm::prelude::*;
use kmm::randomness::prf::Prf;
use rustc_hash::FxHashSet;

/// Four deterministic batches for one family cell: insert-leaning, then
/// delete-leaning, then churn with a delete→re-insert, then a reweight
/// batch (delete + same-endpoint re-insert at a new weight inside ONE
/// batch). Every batch is valid in sequence against the evolving edge set.
fn batches_for(g: &Graph, seed: u64) -> Vec<UpdateBatch> {
    let prf = Prf::new(seed ^ 0xD74CE);
    let n = g.n() as u64;
    let mut present: FxHashSet<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
    let mut alive: Vec<(u32, u32)> = present.iter().copied().collect();
    alive.sort_unstable();
    let mut ctr = 0u64;
    let mut step = |m: u64| {
        ctr += 1;
        prf.eval_mod(0, ctr, m)
    };
    let mut first_deleted: Option<(u32, u32)> = None;
    let mut out = Vec::new();
    for (bi, insert_octile) in [(0usize, 7u64), (1, 1), (2, 4)] {
        let mut batch = UpdateBatch::new();
        for _ in 0..4 + bi {
            let want_insert = step(8) < insert_octile || alive.is_empty();
            if want_insert {
                for _ in 0..64 {
                    let (u, v) = (step(n) as u32, step(n) as u32);
                    if u == v {
                        continue;
                    }
                    let key = (u.min(v), u.max(v));
                    if present.insert(key) {
                        alive.push(key);
                        batch.push(UpdateOp::Insert {
                            u: key.0,
                            v: key.1,
                            w: 1 + step(100),
                        });
                        break;
                    }
                }
            } else {
                let i = step(alive.len() as u64) as usize;
                let key = alive.swap_remove(i);
                present.remove(&key);
                first_deleted.get_or_insert(key);
                batch.push(UpdateOp::Delete { u: key.0, v: key.1 });
            }
        }
        if bi == 2 {
            // Churn batch: resurrect the first casualty (linearity must
            // handle delete → re-insert of the same edge exactly).
            if let Some(key) = first_deleted {
                if present.insert(key) {
                    alive.push(key);
                    batch.push(UpdateOp::Insert {
                        u: key.0,
                        v: key.1,
                        w: 1 + step(100),
                    });
                }
            }
        }
        assert!(!batch.is_empty(), "degenerate batch for this cell");
        out.push(batch);
    }
    // Reweight batch: pick two live edges and re-insert each at a fresh
    // weight in the same batch (the splice must keep exactly one copy).
    let mut batch = UpdateBatch::new();
    let mut picked = FxHashSet::default();
    for _ in 0..2 {
        if alive.is_empty() {
            break;
        }
        let key = alive[step(alive.len() as u64) as usize];
        if !picked.insert(key) {
            continue;
        }
        batch.push(UpdateOp::Delete { u: key.0, v: key.1 });
        batch.push(UpdateOp::Insert {
            u: key.0,
            v: key.1,
            w: 1 + step(100),
        });
    }
    assert!(!batch.is_empty(), "degenerate reweight batch for this cell");
    out.push(batch);
    out
}

/// The tentpole pin: incremental answers are bit-identical to fresh static
/// runs after every batch, across every graph family of the matrix (k and
/// bandwidth rotate per family so every axis value appears).
#[test]
fn dynamic_answers_match_fresh_static_runs_across_families() {
    for &seed in &SEEDS {
        for (fi, (family, g)) in graph_families(seed).into_iter().enumerate() {
            let k = KS[fi % KS.len()];
            let bandwidth = bandwidths()[fi % 2];
            let id = format!("dyn/{family}/k{k}/{bandwidth:?}/seed{seed}");
            let conn_cfg = ConnectivityConfig {
                bandwidth,
                ..ConnectivityConfig::default()
            };
            let mst_cfg = MstConfig {
                bandwidth,
                ..MstConfig::default()
            };
            let mut dc = DynamicCluster::wrap(
                Cluster::builder(k).seed(seed).ingest_graph(&g),
                DynConfig::default(),
            );
            let mut edges = g.edges().to_vec();
            dc.connectivity(&conn_cfg); // warm base solves
            dc.mst(&mst_cfg);
            let batches = batches_for(&g, seed.wrapping_add(fi as u64 * 101));
            assert!(batches.len() >= 4, "{id}: the pin needs ≥ 4 batches");
            for (bi, batch) in batches.iter().enumerate() {
                batch
                    .apply_to_edge_list(g.n(), &mut edges)
                    .unwrap_or_else(|e| panic!("{id} batch {bi}: {e}"));
                dc.apply(batch)
                    .unwrap_or_else(|e| panic!("{id} batch {bi}: {e}"));
                let conn = dc.connectivity(&conn_cfg);
                let st = dc.spanning_forest(&mst_cfg);
                let mst = dc.mst(&mst_cfg);
                let mutated = Graph::from_dedup_edges(g.n(), edges.clone());
                let fresh = Cluster::builder(k).seed(seed).ingest_graph(&mutated);
                let fresh_conn = fresh.run(Connectivity::with(conn_cfg.clone()));
                let fresh_st = fresh.run(SpanningForest::with(mst_cfg.clone()));
                let fresh_mst = fresh.run(Mst::with(mst_cfg.clone()));
                // Bit-identity: the incremental path must reproduce the
                // static answers exactly, not just up to relabeling.
                assert_eq!(
                    conn.output.labels, fresh_conn.output.labels,
                    "{id} batch {bi}: connectivity labels must be bit-identical"
                );
                assert_eq!(
                    conn.output.counted_components, fresh_conn.output.counted_components,
                    "{id} batch {bi}: counted components"
                );
                assert_eq!(
                    st.output.edges, fresh_st.output.edges,
                    "{id} batch {bi}: spanning forest must be bit-identical"
                );
                assert_eq!(
                    mst.output.edges, fresh_mst.output.edges,
                    "{id} batch {bi}: MST must be bit-identical"
                );
                assert_eq!(
                    mst.output.total_weight, fresh_mst.output.total_weight,
                    "{id} batch {bi}: MST weight"
                );
                assert_eq!(
                    mst.output.total_weight,
                    refalgo::forest_weight(&refalgo::kruskal(&mutated)),
                    "{id} batch {bi}: Kruskal oracle"
                );
                // Soundness against the sequential oracles.
                assert_labels_match_reference(&id, &conn.output.labels, &mutated);
                assert!(
                    refalgo::is_spanning_forest(&mutated, &st.output.edges),
                    "{id} batch {bi}: forest must span the mutated graph"
                );
                assert_eq!(
                    st.output.edges.len(),
                    mutated.n() - refalgo::component_count(&mutated),
                    "{id} batch {bi}: forest size"
                );
                // Model accounting stays sane through update + certify.
                assert_stats_sane(&id, &conn.output.stats, k);
                assert_stats_sane(&id, &st.output.stats, k);
                assert_stats_sane(&id, &mst.output.stats, k);
            }
            // The mutated cluster's storage still matches fresh ingestion.
            assert_eq!(dc.m(), edges.len(), "{id}: edge count after churn");
        }
    }
}

/// The same per-batch MST pin under a chaos cell: a seeded drop+dup+reorder
/// plan on both the update routing and the solves must leave every answer
/// bit-identical to the fault-free dynamic run AND a fresh static solve —
/// and the plan must actually fire.
#[test]
fn dynamic_mst_matches_static_under_faults() {
    use kmm::machine::fault::FaultPlan;
    for &seed in &SEEDS {
        for (fi, (family, g)) in graph_families(seed).into_iter().enumerate().step_by(5) {
            let k = KS[(fi / 5) % KS.len()];
            let plan = FaultPlan::new(seed ^ 0xD15C0)
                .with_drop(0.2)
                .with_dup(0.15)
                .with_reorder(0.3);
            let id = format!("dyn-mst-chaos/{family}/k{k}/seed{seed}");
            let mst_faulted = MstConfig {
                faults: Some(plan.clone()),
                ..MstConfig::default()
            };
            let mst_clean = MstConfig::default();
            let mut faulted = DynamicCluster::wrap(
                Cluster::builder(k).seed(seed).ingest_graph(&g),
                DynConfig {
                    faults: Some(plan.clone()),
                    ..DynConfig::default()
                },
            );
            let mut clean = DynamicCluster::wrap(
                Cluster::builder(k).seed(seed).ingest_graph(&g),
                DynConfig::default(),
            );
            let mut edges = g.edges().to_vec();
            faulted.mst(&mst_faulted);
            clean.mst(&mst_clean);
            let mut fired = 0u64;
            for (bi, batch) in batches_for(&g, seed ^ 0xC0FFEE).iter().enumerate() {
                batch
                    .apply_to_edge_list(g.n(), &mut edges)
                    .unwrap_or_else(|e| panic!("{id} batch {bi}: {e}"));
                faulted
                    .apply(batch)
                    .unwrap_or_else(|e| panic!("{id} batch {bi}: {e}"));
                clean
                    .apply(batch)
                    .unwrap_or_else(|e| panic!("{id} batch {bi}: {e}"));
                let run_f = faulted.mst(&mst_faulted);
                let run_c = clean.mst(&mst_clean);
                fired += run_f.report.faults_injected;
                assert_eq!(
                    run_f.output.edges, run_c.output.edges,
                    "{id} batch {bi}: faulted vs clean dynamic MST"
                );
                let mutated = Graph::from_dedup_edges(g.n(), edges.clone());
                let fresh = Cluster::builder(k)
                    .seed(seed)
                    .ingest_graph(&mutated)
                    .run(Mst::with(mst_clean.clone()));
                assert_eq!(
                    run_c.output.edges, fresh.output.edges,
                    "{id} batch {bi}: dynamic vs fresh static MST"
                );
                assert_eq!(
                    run_f.output.total_weight, fresh.output.total_weight,
                    "{id} batch {bi}: MST weight under faults"
                );
            }
            assert!(fired > 0, "{id}: the chaos plan never fired");
        }
    }
}

/// A batch that only touches one component leaves every other component's
/// labels and forest edges untouched — the surviving structure really is
/// reused, not recomputed.
#[test]
fn untouched_components_survive_verbatim() {
    // Two far-apart planted paths plus an isolated blob.
    let mut list: Vec<(u32, u32)> = (0..40).map(|i| (i, i + 1)).collect();
    list.extend((50..90).map(|i| (i, i + 1)));
    let g = Graph::unweighted(100, list);
    let (k, seed) = (5, 9);
    let cfg = ConnectivityConfig::default();
    let mut dc = DynamicCluster::wrap(
        Cluster::builder(k).seed(seed).ingest_graph(&g),
        DynConfig::default(),
    );
    let before = dc.connectivity(&cfg);
    let forest_before: Vec<_> = dc.forest().unwrap().to_vec();
    // Churn strictly inside the second path's component.
    let batch = UpdateBatch::new().delete(60, 61).insert(60, 75, 2);
    dc.apply(&batch).unwrap();
    let after = dc.connectivity(&cfg);
    match dc.last_refresh() {
        RefreshKind::Incremental { active_vertices } => assert!(
            active_vertices <= 41,
            "only the touched component may be re-solved, got {active_vertices}"
        ),
        other => panic!("expected an incremental refresh, got {other:?}"),
    }
    // First path (vertices 0..=40) and the isolated vertices: identical.
    for v in (0..=40).chain(91..100) {
        assert_eq!(
            before.output.labels[v], after.output.labels[v],
            "vertex {v} is in an untouched component"
        );
    }
    let forest_after = dc.forest().unwrap();
    for e in &forest_before {
        if e.u <= 40 {
            assert!(
                forest_after.contains(e),
                "untouched forest edge {e:?} must survive"
            );
        }
    }
}

mod storage_properties {
    use super::*;
    use kmm::graph::graph::Edge;
    use kmm::graph::stream::VecStream;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Arbitrary valid churn, staged in random chunks with compactions
        /// interleaved, always lands shards bit-identical to fresh
        /// ingestion of the mutated sequence — and inside the storage
        /// bound.
        #[test]
        fn staged_churn_equals_fresh_ingestion(
            seed in 0u64..1000,
            k in 2usize..7,
            churn in 8usize..40,
        ) {
            let g = generators::gnm(60, 140, seed);
            let part = Partition::random_vertex(&g, k, seed ^ 0xF00);
            let mut sg = ShardedGraph::from_graph(&g, &part);
            let mut edges = g.edges().to_vec();
            let prf = Prf::new(seed ^ 0xBEEF);
            let mut ctr = 0u64;
            let mut step = |m: u64| { ctr += 1; prf.eval_mod(1, ctr, m) };
            for i in 0..churn {
                if step(2) == 0 && !edges.is_empty() {
                    let at = step(edges.len() as u64) as usize;
                    let e = edges.remove(at);
                    sg.stage_delete(e.u, e.v);
                } else {
                    let (u, v) = (step(60) as u32, step(60) as u32);
                    if u == v || edges.iter().any(|e| (e.u, e.v) == (u.min(v), u.max(v))) {
                        continue;
                    }
                    let w = 1 + step(50);
                    sg.stage_insert(u, v, w);
                    edges.push(Edge::new(u, v, w));
                }
                if i % 7 == 3 {
                    sg.compact();
                }
            }
            sg.compact();
            let want = ShardedGraph::from_stream_with_partition(
                VecStream::new(60, edges.clone()),
                part.clone(),
            );
            prop_assert_eq!(sg.m(), want.m());
            prop_assert_eq!(sg.total_half_edges(), 2 * want.m());
            for i in 0..k {
                prop_assert_eq!(sg.view(i).verts(), want.view(i).verts());
                for &v in sg.view(i).verts() {
                    prop_assert_eq!(
                        sg.view(i).neighbors(v),
                        want.view(i).neighbors(v),
                        "adjacency of {} after churn", v
                    );
                }
            }
            // The O(m/k + Δ) storage envelope survives churn.
            let fair = (2 * sg.m() / k).max(1);
            let delta = sg.max_degree();
            for load in sg.shard_loads() {
                prop_assert!(load <= 3 * fair + 2 * delta);
            }
        }
    }
}
