//! Differential conformance: every distributed algorithm — the four
//! headliners (connectivity, MST, min cut, verification) and the four
//! baselines (flooding, edge-checking Borůvka, referee, REP MST) — is
//! driven through the shared scenario matrix (`tests/common/`) and pinned
//! against exact sequential oracles from `kgraph::refalgo` /
//! `kgraph::mincut`, with the model-accounting invariants checked on every
//! single run. All seeds are fixed: a green run is reproducibly green.
//!
//! Every algorithm dispatches through the session API (`Scenario::cluster`
//! → `Cluster::run`), which is bit-identical to the legacy one-shot entry
//! points (pinned separately in `tests/session.rs`); tests that compare
//! several algorithms on one cell reuse a single ingested cluster.

mod common;

use common::{
    assert_labels_match_reference, assert_stats_sane, bandwidths, graph_families, matrix,
    sub_matrix, KS, SEEDS,
};
use kmm::algo::baselines::edge_boruvka::CheckMode;
use kmm::algo::verify;
use kmm::machine::bsp::Bsp;
use kmm::machine::message::{BatchWire, Envelope, WireSize};
use kmm::machine::network::{Network, NetworkConfig};
use kmm::prelude::*;
use rustc_hash::FxHashSet;

// ---------------------------------------------------------------------
// Headliner 1: connected components (Theorem 1) — full matrix.
// ---------------------------------------------------------------------

#[test]
fn connectivity_conforms_on_full_matrix() {
    for s in matrix() {
        let out = s.cluster().run(Connectivity::with(s.conn_cfg())).output;
        assert_eq!(
            out.component_count(),
            refalgo::component_count(&s.g),
            "{}: component count",
            s.id
        );
        assert_labels_match_reference(&s.id, &out.labels, &s.g);
        if let Some(counted) = out.counted_components {
            assert_eq!(
                counted as usize,
                refalgo::component_count(&s.g),
                "{}: §2.6 output protocol count",
                s.id
            );
        }
        assert!(out.phases > 0, "{}: at least one phase", s.id);
        assert_stats_sane(&s.id, &out.stats, s.k);
        assert!(out.stats.rounds > 0, "{}: rounds must be charged", s.id);
    }
}

// ---------------------------------------------------------------------
// Headliner 2: MST (Theorem 2) — both output criteria.
// ---------------------------------------------------------------------

#[test]
fn mst_conforms_against_kruskal() {
    for s in sub_matrix(2, 0) {
        let out = s.cluster().run(Mst::with(s.mst_cfg())).output;
        assert!(
            refalgo::is_spanning_forest(&s.g, &out.edges),
            "{}: output must span",
            s.id
        );
        assert_eq!(
            out.total_weight,
            refalgo::forest_weight(&refalgo::kruskal(&s.g)),
            "{}: MST weight",
            s.id
        );
        assert_eq!(
            out.total_weight,
            refalgo::forest_weight(&out.edges),
            "{}: reported weight matches reported edges",
            s.id
        );
        assert_stats_sane(&s.id, &out.stats, s.k);
    }
}

#[test]
fn mst_both_endpoints_criterion_conforms() {
    for s in sub_matrix(5, 1) {
        let cfg = MstConfig {
            criterion: OutputCriterion::BothEndpoints,
            ..s.mst_cfg()
        };
        let out = s.cluster().run(Mst::with(cfg)).output;
        assert_eq!(
            out.total_weight,
            refalgo::forest_weight(&refalgo::kruskal(&s.g)),
            "{}: criterion (b) weight",
            s.id
        );
        assert_stats_sane(&s.id, &out.stats, s.k);
    }
}

#[test]
fn spanning_forest_conforms() {
    for s in sub_matrix(4, 2) {
        let out = s.cluster().run(SpanningForest::with(s.mst_cfg())).output;
        assert!(
            refalgo::is_spanning_forest(&s.g, &out.edges),
            "{}: forest must span",
            s.id
        );
        assert_eq!(
            out.edges.len(),
            s.g.n() - refalgo::component_count(&s.g),
            "{}: forest size = n - #components",
            s.id
        );
        assert_stats_sane(&s.id, &out.stats, s.k);
    }
}

// ---------------------------------------------------------------------
// Headliner 3: approximate min cut (Theorem 3) — connected cells only.
// ---------------------------------------------------------------------

#[test]
fn mincut_estimate_brackets_stoer_wagner() {
    for s in sub_matrix(3, 0) {
        if !refalgo::is_connected(&s.g) {
            continue;
        }
        let lambda = kmm::graph::mincut::stoer_wagner(&s.g).expect("connected graph has a cut");
        let out = s.cluster().run(MinCut::with(s.mincut_cfg())).output;
        let logn = (s.g.n() as f64).log2();
        let est = out.estimate.max(1) as f64;
        let ratio = (est / lambda as f64).max(lambda as f64 / est);
        assert!(
            ratio <= 4.0 * logn,
            "{}: estimate {} vs λ={lambda} (ratio {ratio:.1}, O(log n)={logn:.1})",
            s.id,
            out.estimate
        );
        assert!(out.probes > 0, "{}: must probe", s.id);
        assert_stats_sane(&s.id, &out.stats, s.k);
    }
}

// ---------------------------------------------------------------------
// Headliner 4: the Theorem 4 verification problems, all eight, against
// sequential predicates. Derived H-subgraphs make both answers appear.
// ---------------------------------------------------------------------

fn edge_set(edges: &[kmm::graph::graph::Edge]) -> FxHashSet<(u32, u32)> {
    edges.iter().map(|e| (e.u, e.v)).collect()
}

#[test]
fn verification_problems_conform() {
    for s in sub_matrix(4, 3) {
        let cfg = s.conn_cfg();
        let g = &s.g;
        let connected = refalgo::is_connected(g);

        // spanning connected subgraph: the full edge set is one iff G is
        // connected; dropping a spanning-forest edge always breaks it.
        let all = edge_set(g.edges());
        let v = verify::spanning_connected_subgraph(g, &all, s.k, s.seed, &cfg);
        assert_eq!(v.holds, connected, "{}: scs(full)", s.id);
        assert_stats_sane(&s.id, &v.stats, s.k);
        let forest = refalgo::kruskal(g);
        if let Some(drop) = forest.first() {
            let mut pruned = all.clone();
            pruned.remove(&(drop.u, drop.v));
            let v = verify::spanning_connected_subgraph(g, &pruned, s.k, s.seed, &cfg);
            let hg = g.edge_subgraph(&pruned);
            assert_eq!(v.holds, refalgo::is_connected(&hg), "{}: scs(pruned)", s.id);
        }

        // cycle containment: a spanning forest has none; the full graph has
        // one iff m > n - #components.
        let vf = verify::cycle_containment(g, &edge_set(&forest), s.k, s.seed, &cfg);
        assert!(!vf.holds, "{}: forests are acyclic", s.id);
        let vg = verify::cycle_containment(g, &all, s.k, s.seed, &cfg);
        assert_eq!(vg.holds, refalgo::has_cycle(g), "{}: cycle(full)", s.id);
        assert_stats_sane(&s.id, &vg.stats, s.k);

        // e-cycle containment for the first graph edge.
        if let Some(e) = g.edges().first() {
            let ve = verify::e_cycle_containment(g, &all, (e.u, e.v), s.k, s.seed, &cfg);
            assert_eq!(
                ve.holds,
                refalgo::edge_on_cycle(g, e.u, e.v),
                "{}: e-cycle({},{})",
                s.id,
                e.u,
                e.v
            );
            assert_stats_sane(&s.id, &ve.stats, s.k);
        }

        // s-t connectivity: endpoints of an edge are connected; vertices in
        // different reference components are not.
        let labels = refalgo::connected_components(g);
        let (s0, t_conn) = match g.edges().first() {
            Some(e) => (e.u, e.v),
            None => (0, 0),
        };
        if g.m() > 0 {
            let v = verify::st_connectivity(g, s0, t_conn, s.k, s.seed, &cfg);
            assert!(v.holds, "{}: edge endpoints are connected", s.id);
            assert_stats_sane(&s.id, &v.stats, s.k);
        }
        if let Some(t_far) = (0..g.n() as u32).find(|&v| labels[v as usize] != labels[s0 as usize])
        {
            let v = verify::st_connectivity(g, s0, t_far, s.k, s.seed, &cfg);
            assert!(
                !v.holds,
                "{}: cross-component pair must be disconnected",
                s.id
            );
        }

        // cut verification: all edges incident to vertex 0 form a cut iff
        // removing them disconnects 0 from something still present.
        if g.degree(0) > 0 {
            let cut: FxHashSet<(u32, u32)> =
                g.neighbors(0).iter().map(|&(nb, _)| (0, nb)).collect();
            let v = verify::cut_verification(g, &cut, s.k, s.seed, &cfg);
            let reduced = g.without_edges(&cut);
            let expect = refalgo::component_count(&reduced) > refalgo::component_count(g);
            assert_eq!(v.holds, expect, "{}: cut(vertex 0 star)", s.id);
            assert_stats_sane(&s.id, &v.stats, s.k);
        }

        // edge on all s-t paths: a spanning-forest edge of a connected pair.
        if let Some(e) = forest.first() {
            let v = verify::edge_on_all_paths(g, (e.u, e.v), e.u, e.v, s.k, s.seed, &cfg);
            let expect = !refalgo::edge_on_cycle(g, e.u, e.v);
            assert_eq!(v.holds, expect, "{}: edge-on-all-paths", s.id);
            assert_stats_sane(&s.id, &v.stats, s.k);
        }

        // s-t cut verification: the full edge set always cuts a connected
        // pair; the empty set never does.
        if g.m() > 0 {
            let v = verify::st_cut_verification(g, &all, s0, t_conn, s.k, s.seed, &cfg);
            assert!(v.holds, "{}: removing all edges cuts any edge pair", s.id);
            let none = FxHashSet::default();
            let v = verify::st_cut_verification(g, &none, s0, t_conn, s.k, s.seed, &cfg);
            assert!(!v.holds, "{}: the empty set cuts nothing connected", s.id);
            assert_stats_sane(&s.id, &v.stats, s.k);
        }

        // bipartiteness against two-coloring.
        let v = verify::bipartiteness(g, s.k, s.seed, &cfg);
        assert_eq!(
            v.holds,
            refalgo::bipartition(g).is_some(),
            "{}: bipartiteness",
            s.id
        );
        assert_stats_sane(&s.id, &v.stats, s.k);
    }
}

// ---------------------------------------------------------------------
// Baselines 1–2: flooding and referee connectivity.
// ---------------------------------------------------------------------

/// Max over vertices reachable from `src` of the minimum number of
/// *inter-machine* edges on any path from `src` (0-1 BFS). Flooding
/// relaxes labels within a machine for free, so this — not the graph
/// eccentricity — is the causal lower bound on its graph-rounds.
fn machine_hop_eccentricity(g: &Graph, part: &Partition, src: u32) -> u32 {
    let mut dist = vec![u32::MAX; g.n()];
    let mut dq = std::collections::VecDeque::new();
    dist[src as usize] = 0;
    dq.push_back(src);
    let mut ecc = 0;
    while let Some(u) = dq.pop_front() {
        let du = dist[u as usize];
        ecc = ecc.max(du);
        for &(v, _) in g.neighbors(u) {
            let cost = u32::from(part.home(u) != part.home(v));
            if du + cost < dist[v as usize] {
                dist[v as usize] = du + cost;
                if cost == 0 {
                    dq.push_front(v);
                } else {
                    dq.push_back(v);
                }
            }
        }
    }
    ecc
}

#[test]
fn flooding_conforms_on_matrix() {
    for s in sub_matrix(2, 1) {
        let out = s.cluster().run(Flooding::with(s.bandwidth)).output;
        assert_labels_match_reference(&s.id, &out.labels, &s.g);
        // Label 0 starts at vertex 0 and must cross every inter-machine
        // edge on some causal path, one per graph-round; flooding uses the
        // same (g, k, seed) partition reconstructed here.
        let part = Partition::random_vertex(&s.g, s.k, s.seed);
        let bound = machine_hop_eccentricity(&s.g, &part, 0).max(1);
        assert!(
            out.graph_rounds >= bound,
            "{}: flooding needs ≥ {bound} graph-rounds (machine-hop ecc), took {}",
            s.id,
            out.graph_rounds
        );
        assert_stats_sane(&s.id, &out.stats, s.k);
    }
}

#[test]
fn referee_conforms_on_matrix() {
    for s in sub_matrix(2, 0) {
        let out = s.cluster().run(Referee::with(s.bandwidth)).output;
        assert_labels_match_reference(&s.id, &out.labels, &s.g);
        assert_stats_sane(&s.id, &out.stats, s.k);
        // The referee hoards everything: every transmitted bit lands on
        // machine 0. (On e.g. a star whose center is homed at machine 0,
        // all edges can be referee-local and nothing is transmitted.)
        assert_eq!(
            out.stats.recv_bits[0], out.stats.total_bits,
            "{}: all transmitted bits must land on the referee",
            s.id
        );
    }
}

// ---------------------------------------------------------------------
// Baselines 3–4: edge-checking Borůvka (both check modes) and REP MST.
// ---------------------------------------------------------------------

#[test]
fn edge_boruvka_conforms_in_both_check_modes() {
    for s in sub_matrix(4, 1) {
        let want = refalgo::forest_weight(&refalgo::kruskal(&s.g));
        let c = s.cluster();
        for mode in [CheckMode::BatchedPush, CheckMode::PerEdgeTest] {
            let out = c
                .run(EdgeBoruvka::with(EdgeBoruvkaConfig {
                    bandwidth: s.bandwidth,
                    mode,
                }))
                .output;
            assert!(
                refalgo::is_spanning_forest(&s.g, &out.edges),
                "{}/{mode:?}: spans",
                s.id
            );
            assert_eq!(out.total_weight, want, "{}/{mode:?}: weight", s.id);
            assert_stats_sane(&s.id, &out.stats, s.k);
        }
    }
}

#[test]
fn rep_mst_conforms_under_edge_partition() {
    for s in sub_matrix(4, 0) {
        let out = s.cluster().run(RepMst::with(s.mst_cfg())).output;
        assert!(
            refalgo::is_spanning_forest(&s.g, &out.mst.edges),
            "{}: spans",
            s.id
        );
        assert_eq!(
            out.mst.total_weight,
            refalgo::forest_weight(&refalgo::kruskal(&s.g)),
            "{}: weight under REP",
            s.id
        );
        assert!(
            out.filtered_edges <= s.g.m(),
            "{}: filtering cannot invent edges",
            s.id
        );
        assert!(
            out.filtered_edges >= s.g.n() - refalgo::component_count(&s.g),
            "{}: filtering must keep a spanning structure",
            s.id
        );
        assert_stats_sane(&s.id, &out.mst.stats, s.k);
    }
}

// ---------------------------------------------------------------------
// Cross-algorithm agreement: independent implementations of the same
// problem agree cell by cell.
// ---------------------------------------------------------------------

#[test]
fn all_connectivity_algorithms_agree() {
    for s in sub_matrix(5, 2) {
        let want = refalgo::component_count(&s.g);
        // Three independent implementations of the same problem, one
        // ingested cluster: the duplicated per-algorithm dispatch the
        // session API exists to collapse.
        let cl = s.cluster();
        let a = cl
            .run(Connectivity::with(s.conn_cfg()))
            .output
            .component_count();
        let b = cl.run(Flooding::with(s.bandwidth)).output.component_count();
        let c = {
            let mut l = cl.run(Referee::with(s.bandwidth)).output.labels;
            l.sort_unstable();
            l.dedup();
            l.len()
        };
        assert!(
            a == want && b == want && c == want,
            "{}: sketches={a} flooding={b} referee={c} reference={want}",
            s.id
        );
    }
}

#[test]
fn all_mst_algorithms_agree() {
    for s in sub_matrix(6, 4) {
        let want = refalgo::forest_weight(&refalgo::kruskal(&s.g));
        let cl = s.cluster();
        let a = cl.run(Mst::with(s.mst_cfg())).output.total_weight;
        let b = cl
            .run(EdgeBoruvka::with(EdgeBoruvkaConfig {
                bandwidth: s.bandwidth,
                mode: CheckMode::BatchedPush,
            }))
            .output
            .total_weight;
        let c = cl.run(RepMst::with(s.mst_cfg())).output.mst.total_weight;
        assert!(
            a == want && b == want && c == want,
            "{}: sketch={a} boruvka={b} rep={c} kruskal={want}",
            s.id
        );
    }
}

// ---------------------------------------------------------------------
// Determinism: reruns of a cell are bit-identical; the partition axis
// (RVP vs REP) and the seed axis actually matter.
// ---------------------------------------------------------------------

#[test]
fn scenario_runs_are_deterministic() {
    for s in sub_matrix(7, 3) {
        // Rerunning on the same cluster and on a freshly ingested one must
        // both be bit-identical.
        let cl = s.cluster();
        let a = cl.run(Connectivity::with(s.conn_cfg())).output;
        let b = cl.run(Connectivity::with(s.conn_cfg())).output;
        let fresh = s.cluster().run(Connectivity::with(s.conn_cfg())).output;
        assert_eq!(a.labels, b.labels, "{}: labels identical", s.id);
        assert_eq!(a.labels, fresh.labels, "{}: fresh-cluster labels", s.id);
        assert_eq!(a.stats.rounds, b.stats.rounds, "{}: rounds identical", s.id);
        assert_eq!(
            a.stats.total_bits, b.stats.total_bits,
            "{}: bits identical",
            s.id
        );
        let m = cl.run(Mst::with(s.mst_cfg())).output;
        let m2 = cl.run(Mst::with(s.mst_cfg())).output;
        assert_eq!(m.edges, m2.edges, "{}: MST edges identical", s.id);
    }
}

#[test]
fn partition_models_are_distinct_but_agree_on_answers() {
    let g = generators::randomize_weights(&generators::gnm(120, 300, 5), 500, 6);
    for &k in &KS {
        for &seed in &SEEDS {
            let id = format!("partition-axis/k{k}/seed{seed}");
            let rvp = Partition::random_vertex(&g, k, seed);
            let rep = Partition::random_edge(&g, k, seed);
            assert_eq!(rvp.kind(), PartitionKind::Rvp, "{id}");
            assert_eq!(rep.kind(), PartitionKind::Rep, "{id}");
            let covered: usize = (0..k).map(|i| rep.edges_of(&g, i).len()).sum();
            assert_eq!(covered, g.m(), "{id}: REP covers each edge exactly once");
            // Same answer through both models' MST paths, one cluster.
            let want = refalgo::forest_weight(&refalgo::kruskal(&g));
            let cl = Cluster::builder(k).seed(seed).ingest_graph(&g);
            let a = cl.run(Mst::default()).output.total_weight;
            let b = cl.run(RepMst::default()).output.mst.total_weight;
            assert!(a == want && b == want, "{id}: rvp={a} rep={b} want={want}");
        }
    }
}

// ---------------------------------------------------------------------
// BSP vs fine-grained network: the analytic round charge of the superstep
// layer equals the drain time of the per-round FIFO simulation for the
// same batch, across the matrix's bandwidth and k axes.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Blob(u64);

impl WireSize for Blob {
    fn wire_bits(&self) -> u64 {
        self.0
    }
}

impl BatchWire for Blob {}

#[test]
fn bsp_round_charge_matches_fine_grained_network() {
    for &k in &KS {
        for &bandwidth in &bandwidths() {
            for &seed in &SEEDS {
                let id = format!("bsp-parity/k{k}/{bandwidth:?}/seed{seed}");
                // A deterministic pseudo-random batch from the cell seed.
                let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ k as u64;
                let mut step = || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                let msgs: Vec<(usize, usize, u64)> = (0..60)
                    .map(|_| {
                        let s = (step() % k as u64) as usize;
                        let mut d = (step() % k as u64) as usize;
                        if d == s {
                            d = (d + 1) % k;
                        }
                        (s, d, 1 + step() % 300)
                    })
                    .collect();
                let cfg = NetworkConfig::new(k, bandwidth, 256);
                let mut bsp: Bsp<Blob> = Bsp::new(cfg);
                bsp.superstep(
                    msgs.iter()
                        .map(|&(s, d, b)| Envelope::new(s, d, Blob(b)))
                        .collect(),
                );
                let mut net: Network<Blob> = Network::new(cfg);
                for &(s, d, b) in &msgs {
                    net.send(Envelope::new(s, d, Blob(b)));
                }
                net.drain();
                assert_eq!(bsp.stats().rounds, net.round(), "{id}: round parity");
                assert_eq!(
                    bsp.stats().total_bits,
                    net.stats().total_bits,
                    "{id}: bit parity"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// The matrix itself is wide enough for the acceptance criteria and fully
// deterministic (guards against accidental narrowing or nondeterminism).
// ---------------------------------------------------------------------

#[test]
fn matrix_shape_meets_acceptance_floor() {
    let cells = matrix();
    let families: std::collections::BTreeSet<&str> = cells.iter().map(|s| s.family).collect();
    let ks: std::collections::BTreeSet<usize> = cells.iter().map(|s| s.k).collect();
    assert!(
        families.len() >= 4,
        "matrix must span ≥ 4 graph families, has {families:?}"
    );
    assert!(
        ks.len() >= 3,
        "matrix must span ≥ 3 machine counts, has {ks:?}"
    );
    assert!(cells.len() >= families.len() * ks.len());
    // Scenario ids are unique (so failures identify a single cell) and
    // graphs are seed-deterministic across materializations.
    let ids: std::collections::BTreeSet<&str> = cells.iter().map(|s| s.id.as_str()).collect();
    assert_eq!(ids.len(), cells.len(), "scenario ids must be unique");
    for (a, b) in matrix().iter().zip(cells.iter()) {
        assert_eq!(a.g.edges(), b.g.edges(), "{}: generator determinism", a.id);
    }
    // Every scenario graph is non-trivial for k-machine purposes.
    for s in &cells {
        assert!(s.k >= 2, "{}: model needs k ≥ 2", s.id);
        assert!(s.g.n() >= 2, "{}: degenerate graph", s.id);
    }
    // Subsampling keeps every axis value represented.
    for (stride, phase) in [(2usize, 0usize), (2, 1), (3, 0), (4, 1), (5, 2)] {
        let sub = sub_matrix(stride, phase);
        let sub_ks: std::collections::BTreeSet<usize> = sub.iter().map(|s| s.k).collect();
        let sub_fams: std::collections::BTreeSet<&str> = sub.iter().map(|s| s.family).collect();
        assert!(
            sub_ks.len() >= 3,
            "sub-matrix({stride},{phase}) lost k coverage: {sub_ks:?}"
        );
        assert!(
            sub_fams.len() >= 4,
            "sub-matrix({stride},{phase}) lost family coverage: {sub_fams:?}"
        );
    }
    // The family menagerie includes both connected and disconnected, and
    // both bipartite and odd-cycle inputs — the verification problems need
    // both answers to occur.
    let fams = graph_families(SEEDS[0]);
    assert!(fams.iter().any(|(_, g)| refalgo::is_connected(g)));
    assert!(fams.iter().any(|(_, g)| !refalgo::is_connected(g)));
    assert!(fams.iter().any(|(_, g)| refalgo::bipartition(g).is_some()));
    assert!(fams.iter().any(|(_, g)| refalgo::bipartition(g).is_none()));
}
