//! Property-based tests of the model substrate and the paper's invariants.

use kmm::algo::lowerbound::{scs_gadget, DisjointnessInstance};
use kmm::machine::bandwidth::Bandwidth;
use kmm::machine::bsp::Bsp;
use kmm::machine::message::{BatchWire, Envelope, WireSize};
use kmm::machine::network::{Network, NetworkConfig};
use kmm::prelude::*;
use kmm::randomness::shared::SharedRandomness;
use kmm::sketch::{L0Sketch, SketchFns, SketchParams};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Blob(u64);
impl WireSize for Blob {
    fn wire_bits(&self) -> u64 {
        self.0
    }
}

impl BatchWire for Blob {}

fn net_cfg(k: usize, w: u64) -> NetworkConfig {
    NetworkConfig::new(k, Bandwidth::Bits(w), 1024)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The BSP analytic round charge equals the fine-grained network's
    /// drain time for any batch (DESIGN.md §3.1).
    #[test]
    fn bsp_equals_fine_grained_rounds(
        k in 2usize..8,
        w in 1u64..64,
        msgs in prop::collection::vec((0usize..8, 0usize..8, 1u64..200), 0..80),
    ) {
        let msgs: Vec<(usize, usize, u64)> = msgs
            .into_iter()
            .map(|(s, d, b)| {
                let s = s % k;
                let mut d = d % k;
                if d == s { d = (d + 1) % k; }
                (s, d, b)
            })
            .collect();
        let mut bsp: Bsp<Blob> = Bsp::new(net_cfg(k, w));
        bsp.superstep(msgs.iter().map(|&(s, d, b)| Envelope::new(s, d, Blob(b))).collect());
        let mut net: Network<Blob> = Network::new(net_cfg(k, w));
        for &(s, d, b) in &msgs {
            net.send(Envelope::new(s, d, Blob(b)));
        }
        net.drain();
        prop_assert_eq!(bsp.stats().rounds, net.round());
        prop_assert_eq!(bsp.stats().total_bits, net.stats().total_bits);
    }

    /// RVP partitions are balanced within the w.h.p. bound (§1.1).
    #[test]
    fn rvp_partition_balance(n in 500usize..3000, k in 2usize..16, seed in 0u64..1000) {
        let g = generators::path(n);
        let part = Partition::random_vertex(&g, k, seed);
        let loads = part.vertex_loads();
        prop_assert_eq!(loads.iter().sum::<usize>(), n);
        let mean = n as f64 / k as f64;
        for &l in &loads {
            // 6-sigma binomial bound, generous for proptest stability.
            prop_assert!((l as f64 - mean).abs() < 6.0 * mean.sqrt() + 8.0);
        }
    }

    /// Sketch linearity: summing the sketches of a vertex subset leaves a
    /// sketch whose every sample is a cut edge of that subset — never an
    /// internal edge (the §2.3 cancellation property).
    #[test]
    fn sketch_cancellation_samples_only_cut_edges(
        seed in 0u64..500,
        n in 30usize..120,
        split in 2usize..15,
    ) {
        let g = generators::random_connected(n, n / 2, seed);
        let params = SketchParams::for_graph(n, 4);
        let shared = SharedRandomness::new(seed ^ 0xF00);
        let fns = SketchFns::new(&shared, 1, params);
        // Subset = vertices 0..split.
        let mut acc = L0Sketch::new(params);
        for v in 0..split.min(n) as u32 {
            for &(nb, _) in g.neighbors(v) {
                acc.add_incident_edge(&fns, v, nb);
            }
        }
        if let Some((u, v)) = acc.query(&fns) {
            let inside = |x: u32| (x as usize) < split.min(n);
            prop_assert!(g.has_edge(u, v), "sampled edge must exist");
            prop_assert!(
                inside(u) != inside(v),
                "sampled edge ({u},{v}) must cross the subset boundary"
            );
        }
    }

    /// The Figure-1 reduction: H is a spanning connected subgraph iff the
    /// disjointness instance is disjoint (Lemma 8 / Theorem 5 setup).
    #[test]
    fn figure1_reduction_is_exact(
        b in 2usize..40,
        density in 0u64..1000,
        seed in 0u64..500,
    ) {
        let inst = DisjointnessInstance::random(b, density, seed, None);
        let (g, h) = scs_gadget(&inst);
        let hg = g.edge_subgraph(&h);
        prop_assert_eq!(refalgo::is_connected(&hg), inst.disjoint());
    }

    /// Kruskal on small graphs is optimal: no spanning tree found by brute
    /// force enumeration of edge subsets beats it.
    #[test]
    fn kruskal_is_optimal_on_small_graphs(seed in 0u64..200) {
        let g = generators::randomize_weights(&generators::random_connected(7, 6, seed), 50, seed);
        let mst = refalgo::kruskal(&g);
        let best = refalgo::forest_weight(&mst);
        let m = g.m();
        // Enumerate all subsets of size n-1 (tiny graph).
        let edges = g.edges();
        let mut better = None;
        for mask in 0u32..(1 << m) {
            if mask.count_ones() as usize != g.n() - 1 {
                continue;
            }
            let subset: Vec<_> = (0..m).filter(|i| mask >> i & 1 == 1).map(|i| edges[i]).collect();
            if refalgo::is_spanning_forest(&g, &subset) {
                let w = refalgo::forest_weight(&subset);
                if w < best {
                    better = Some(w);
                }
            }
        }
        prop_assert!(better.is_none(), "found spanning tree cheaper than Kruskal");
    }

    /// Distributed connectivity equals the reference on arbitrary G(n, m).
    #[test]
    fn distributed_connectivity_is_correct(
        n in 20usize..150,
        density in 0usize..3,
        k in 2usize..7,
        seed in 0u64..300,
    ) {
        let m = (n * (density + 1) / 2).min(n * (n - 1) / 2);
        let g = generators::gnm(n, m, seed);
        let out = connected_components(&g, k, seed ^ 0xABC, &ConnectivityConfig::default());
        prop_assert_eq!(out.component_count(), refalgo::component_count(&g));
    }

    /// Distributed MST weight equals Kruskal on arbitrary weighted graphs.
    #[test]
    fn distributed_mst_is_optimal(
        n in 10usize..80,
        extra in 0usize..60,
        k in 2usize..6,
        seed in 0u64..200,
    ) {
        let g = generators::randomize_weights(
            &generators::random_connected(n, extra, seed), 1000, seed ^ 7);
        let out = minimum_spanning_tree(&g, k, seed ^ 0xDEF, &MstConfig::default());
        prop_assert!(refalgo::is_spanning_forest(&g, &out.edges));
        prop_assert_eq!(
            out.total_weight,
            refalgo::forest_weight(&refalgo::kruskal(&g))
        );
    }
}

#[test]
fn edge_list_io_roundtrip_property() {
    // Deterministic loop standing in for a proptest (string strategy costs
    // outweigh benefits here).
    for seed in 0..30u64 {
        let g = generators::randomize_weights(&generators::gnm(40, 100, seed), 77, seed);
        let text = kmm::graph::io::to_edge_list(&g);
        let h = kmm::graph::io::from_edge_list(&text).unwrap();
        assert_eq!(g.edges(), h.edges());
    }
}
