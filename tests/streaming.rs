//! Streaming-ingestion conformance: every generator family must yield
//! bit-identical graphs through the lazy `EdgeStream` path and the
//! materialized path, shards must agree with central adjacency, and no
//! shard may store more than `O(m/k + Δ)` edges.

use kmm::graph::stream::{materialize, DynEdgeStream};
use kmm::graph::{generators, refalgo, Graph, Partition, ShardedGraph};
use proptest::prelude::*;

/// Every generator family as (name, stream, materialized) for one seed.
fn families(seed: u64) -> Vec<(&'static str, DynEdgeStream, Graph)> {
    vec![
        (
            "gnp",
            generators::gnp_stream(180, 0.02, seed),
            generators::gnp(180, 0.02, seed),
        ),
        (
            "gnm",
            generators::gnm_stream(150, 420, seed),
            generators::gnm(150, 420, seed),
        ),
        ("path", generators::path_stream(90), generators::path(90)),
        ("cycle", generators::cycle_stream(91), generators::cycle(91)),
        (
            "grid",
            generators::grid_stream(9, 11),
            generators::grid(9, 11),
        ),
        ("star", generators::star_stream(77), generators::star(77)),
        (
            "complete",
            generators::complete_stream(24),
            generators::complete(24),
        ),
        (
            "tree",
            generators::random_tree_stream(130, seed),
            generators::random_tree(130, seed),
        ),
        (
            "connected",
            generators::random_connected_stream(120, 140, seed),
            generators::random_connected(120, 140, seed),
        ),
        (
            "planted",
            generators::planted_components_stream(140, 4, 5, seed),
            generators::planted_components(140, 4, 5, seed),
        ),
        (
            "barbell",
            generators::barbell_stream(20, 3, 5, seed),
            generators::barbell(20, 3, 5, seed),
        ),
        (
            "parity-cycle",
            generators::parity_cycle_stream(33, true),
            generators::parity_cycle(33, true),
        ),
        (
            "weighted",
            generators::weighted_stream(generators::gnm_stream(110, 260, seed), 999, seed ^ 1),
            generators::randomize_weights(&generators::gnm(110, 260, seed), 999, seed ^ 1),
        ),
    ]
}

#[test]
fn every_family_streams_bit_identically() {
    for seed in [3u64, 11, 42] {
        for (name, stream, graph) in families(seed) {
            let streamed = materialize(stream);
            assert_eq!(streamed.n(), graph.n(), "{name}/seed{seed}: n");
            assert_eq!(
                streamed.edges(),
                graph.edges(),
                "{name}/seed{seed}: edge lists must be bit-identical"
            );
        }
    }
}

#[test]
fn every_family_shards_identically_from_stream_and_graph() {
    for seed in [3u64, 11] {
        for (name, stream, graph) in families(seed) {
            let k = 5;
            let part = Partition::random_vertex(&graph, k, seed ^ 0xA11);
            let from_stream = ShardedGraph::from_stream_with_partition(stream, part.clone());
            let from_graph = ShardedGraph::from_graph(&graph, &part);
            assert_eq!(from_stream.m(), from_graph.m(), "{name}/seed{seed}: m");
            for i in 0..k {
                let (a, b) = (from_stream.view(i), from_graph.view(i));
                assert_eq!(a.verts(), b.verts(), "{name}/seed{seed}: shard {i} verts");
                for &v in a.verts() {
                    assert_eq!(
                        a.neighbors(v),
                        b.neighbors(v),
                        "{name}/seed{seed}: adjacency of {v}"
                    );
                }
            }
        }
    }
}

#[test]
fn shard_storage_stays_within_fair_share_plus_max_degree() {
    // The O(m/k + Δ) storage bound, on a balanced random graph and on the
    // adversarial star (where the hub's home must hold Δ = n − 1).
    for (name, g, k) in [
        ("gnm", generators::gnm(4000, 16_000, 7), 16usize),
        ("star", generators::star(2000), 8),
        ("grid", generators::grid(40, 50), 8),
    ] {
        let part = Partition::random_vertex(&g, k, 13);
        let sg = ShardedGraph::from_graph(&g, &part);
        let delta = sg.max_degree();
        let fair = 2 * g.m() / k;
        assert_eq!(sg.total_half_edges(), 2 * g.m(), "{name}: conservation");
        for (i, load) in sg.shard_loads().into_iter().enumerate() {
            assert!(
                load <= 3 * fair + 2 * delta,
                "{name}: shard {i} stores {load} half-edges, bound O(m/k + Δ) \
                 with m/k share {fair} and Δ {delta}"
            );
        }
    }
}

#[test]
fn streamed_shard_runs_headliners_against_oracles() {
    // End-to-end: stream → shards → algorithms, checked against the
    // sequential oracles on the (separately materialized) same graph.
    let seed = 17u64;
    let sg = ShardedGraph::from_stream(generators::gnm_stream(1500, 3000, seed), 8, seed);
    let g = generators::gnm(1500, 3000, seed);
    let conn = kmm::algo::connectivity::connected_components_sharded(
        &sg,
        seed,
        &ConnectivityConfig::default(),
    );
    assert_eq!(conn.component_count(), refalgo::component_count(&g));

    let wseed = 19u64;
    let wsg = ShardedGraph::from_stream(
        generators::weighted_stream(generators::random_connected_stream(600, 900, wseed), 500, 3),
        6,
        wseed,
    );
    let wg = generators::randomize_weights(&generators::random_connected(600, 900, wseed), 500, 3);
    let mst = kmm::algo::mst::minimum_spanning_tree_sharded(&wsg, wseed, &MstConfig::default());
    assert!(refalgo::is_spanning_forest(&wg, &mst.edges));
    assert_eq!(
        mst.total_weight,
        refalgo::forest_weight(&refalgo::kruskal(&wg))
    );

    let st = kmm::algo::st::spanning_forest_sharded(&wsg, wseed, &MstConfig::default());
    assert!(refalgo::is_spanning_forest(&wg, &st.edges));
    assert_eq!(st.edges.len(), wg.n() - refalgo::component_count(&wg));
}

use kmm::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random (n, m, seed): the gnm stream and the materialized gnm agree
    /// bit for bit, and sharding conserves every half-edge.
    #[test]
    fn gnm_streaming_parity_holds_for_random_shapes(
        n in 2usize..200,
        density in 0usize..4,
        seed in 0u64..1000,
    ) {
        let total = n * (n - 1) / 2;
        let m = (total * density / 4).min(total);
        let streamed = materialize(generators::gnm_stream(n, m, seed));
        let direct = generators::gnm(n, m, seed);
        prop_assert_eq!(streamed.edges(), direct.edges());
        let sg = ShardedGraph::from_stream(generators::gnm_stream(n, m, seed), 4, seed ^ 7);
        prop_assert_eq!(sg.m(), m);
        prop_assert_eq!(sg.total_half_edges(), 2 * m);
    }

    /// Random G(n, p): parity between the geometric-skip stream and the
    /// materialized constructor.
    #[test]
    fn gnp_streaming_parity_holds_for_random_shapes(
        n in 2usize..150,
        p_mil in 0u32..200,
        seed in 0u64..1000,
    ) {
        let p = p_mil as f64 / 1000.0;
        let streamed = materialize(generators::gnp_stream(n, p, seed));
        let direct = generators::gnp(n, p, seed);
        prop_assert_eq!(streamed.edges(), direct.edges());
    }
}
