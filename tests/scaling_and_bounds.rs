//! Quantitative checks of the paper's bounds at small-but-meaningful scale:
//! Lemma 6 (DRR depth), Lemma 7 (phase count), Lemma 1 (proxy load
//! balance), Theorem 1 (superlinear k-scaling), and the Theorem 2(b)
//! bottleneck.

use kmm::machine::Bandwidth;
use kmm::prelude::*;

#[test]
fn lemma7_phase_count_is_logarithmic() {
    for (n, seed) in [(512usize, 1u64), (1024, 2), (2048, 3)] {
        let g = generators::random_connected(n, n, seed);
        let out = connected_components(&g, 8, seed + 10, &ConnectivityConfig::default());
        let log = (n as f64).log2();
        assert!(
            (out.phases as f64) <= 2.5 * log,
            "n={n}: {} phases vs 12 log n = {}",
            out.phases,
            12.0 * log
        );
        // Component counts must be non-increasing across phases.
        for w in out.phase_components.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }
}

#[test]
fn lemma6_drr_depth_is_logarithmic() {
    // Adversarially chain-able workload: a long path.
    let g = generators::path(4096);
    let out = connected_components(&g, 8, 5, &ConnectivityConfig::default());
    let bound = 6.0 * (4096f64 + 1.0).log2();
    for (i, &d) in out.drr_depths.iter().enumerate() {
        assert!(
            (d as f64) <= bound,
            "phase {i}: DRR depth {d} above the Lemma 6 bound {bound:.0}"
        );
    }
}

#[test]
fn lemma1_proxy_routing_is_balanced() {
    // On a big superstep the max link load must be within a polylog factor
    // of the mean (Lemma 1's w.h.p. guarantee).
    let g = generators::gnm(4000, 10_000, 7);
    let k = 8;
    let out = connected_components(&g, k, 8, &ConnectivityConfig::default());
    let links = (k * (k - 1)) as u64;
    // Only supersteps moving at least one sketch per link on average.
    let imbalance = out.stats.link_imbalance(links, 100_000);
    assert!(
        imbalance < 4.0,
        "proxy routing imbalance {imbalance:.2} should be O(polylog)/mean"
    );
}

#[test]
fn theorem1_rounds_scale_superlinearly_in_k() {
    let g = generators::gnm(6000, 18_000, 9);
    let cfg = ConnectivityConfig::default();
    let rounds: Vec<u64> = [4usize, 8, 16]
        .iter()
        .map(|&k| connected_components(&g, k, 10, &cfg).stats.rounds)
        .collect();
    // Doubling k must beat halving (superlinear).
    assert!(
        rounds[0] as f64 / rounds[1] as f64 > 2.0,
        "k: 4→8 gave only {:.2}x",
        rounds[0] as f64 / rounds[1] as f64
    );
    assert!(
        rounds[1] as f64 / rounds[2] as f64 > 2.0,
        "k: 8→16 gave only {:.2}x",
        rounds[1] as f64 / rounds[2] as f64
    );
}

#[test]
fn theorem2b_star_bottleneck_appears() {
    // On a star, the criterion-(b) routing stage must concentrate Θ(n)
    // receive bits at the hub's home machine while the average machine
    // receives only Θ(n/k): the Ω~(n/k) bottleneck of [22].
    let g = generators::randomize_weights(&generators::star(2000), 100, 11);
    let k = 8;
    let b = minimum_spanning_tree(
        &g,
        k,
        12,
        &MstConfig {
            criterion: OutputCriterion::BothEndpoints,
            ..MstConfig::default()
        },
    );
    let routing = b.endpoint_routing.expect("criterion (b) ran");
    let max = routing.max_machine_recv_bits() as f64;
    let mean = routing.recv_bits.iter().sum::<u64>() as f64 / routing.recv_bits.len() as f64;
    assert!(
        max > (k as f64 / 4.0) * mean,
        "hub machine should receive ~k/2 times the mean: max={max}, mean={mean}"
    );
    // Sanity: on a path the same stage stays balanced.
    let p = generators::randomize_weights(&generators::path(2000), 100, 13);
    let bp = minimum_spanning_tree(
        &p,
        k,
        14,
        &MstConfig {
            criterion: OutputCriterion::BothEndpoints,
            ..MstConfig::default()
        },
    );
    let routing_p = bp.endpoint_routing.expect("criterion (b) ran");
    let max_p = routing_p.max_machine_recv_bits() as f64;
    let mean_p = routing_p.recv_bits.iter().sum::<u64>() as f64 / routing_p.recv_bits.len() as f64;
    assert!(
        max_p < 2.0 * mean_p,
        "path routing should stay balanced: max={max_p}, mean={mean_p}"
    );
}

#[test]
fn flooding_beats_sketches_only_on_low_diameter() {
    use kmm::algo::baselines::flooding::flooding_connectivity;
    let k = 16;
    // Low diameter: flooding wins.
    let low_d = generators::planted_components(3000, 6, 400, 13);
    let s1 = connected_components(&low_d, k, 14, &ConnectivityConfig::default());
    let f1 = flooding_connectivity(&low_d, k, 14, Bandwidth::default());
    assert!(
        f1.stats.rounds < s1.stats.rounds,
        "low-D: flooding should win"
    );
    // High diameter: sketches win.
    let high_d = generators::path(3000);
    let s2 = connected_components(&high_d, k, 15, &ConnectivityConfig::default());
    let f2 = flooding_connectivity(&high_d, k, 15, Bandwidth::default());
    assert!(
        s2.stats.rounds < f2.stats.rounds,
        "high-D: sketches should win ({} vs {})",
        s2.stats.rounds,
        f2.stats.rounds
    );
}

#[test]
fn shared_randomness_charge_is_visible_and_ablatable() {
    let g = generators::gnm(2000, 6000, 17);
    let with = connected_components(
        &g,
        8,
        18,
        &ConnectivityConfig {
            charge_shared_randomness: true,
            ..ConnectivityConfig::default()
        },
    );
    let without = connected_components(
        &g,
        8,
        18,
        &ConnectivityConfig {
            charge_shared_randomness: false,
            ..ConnectivityConfig::default()
        },
    );
    assert_eq!(
        with.labels, without.labels,
        "charging must not change outputs"
    );
    assert!(
        with.stats.rounds > without.stats.rounds,
        "the §2.2 distribution cost must be visible in rounds"
    );
}

#[test]
fn rep_model_pays_the_n_over_k_routing() {
    use kmm::algo::baselines::rep_mst::rep_mst;
    let g = generators::randomize_weights(&generators::gnm(3000, 9000, 19), 777, 20);
    let cfg = MstConfig::default();
    let rvp = minimum_spanning_tree(&g, 16, 21, &cfg);
    let rep = rep_mst(&g, 16, 21, &cfg);
    assert_eq!(rep.mst.total_weight, rvp.total_weight);
    // REP total includes the Θ~(n/k) conversion; at k=16 it should clearly
    // exceed the RVP run on the (already filtered, smaller) graph.
    assert!(
        rep.mst.stats.rounds > rvp.stats.rounds / 4,
        "REP should not be mysteriously cheap: {} vs {}",
        rep.mst.stats.rounds,
        rvp.stats.rounds
    );
}
