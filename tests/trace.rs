//! Trace determinism and tiling (DESIGN.md §3.14).
//!
//! The logical trace stream is part of the deterministic surface: same
//! seed + config must yield a *byte-identical* logical JSONL whichever
//! transport carried the supersteps, and turning tracing on must never
//! perturb outputs or [`CommStats`] — the tracer only observes charges
//! the accounting layer already made. The per-phase breakdown is an exact
//! tiling: its rounds/bits/recovery columns sum to the run totals with no
//! slack, including runs that rolled phases back after crashes.

use std::path::PathBuf;
use std::sync::Once;

use kmm::machine::trace::{chrome_trace, parse_jsonl, phase_breakdown, to_jsonl};
use kmm::machine::transport::set_worker_exe;
use kmm::prelude::*;

/// Points the coordinator at the test build of the `kmm` binary (same
/// pattern as `tests/transport.rs`).
fn use_test_worker_exe() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| set_worker_exe(PathBuf::from(env!("CARGO_BIN_EXE_kmm"))));
}

/// Runs connectivity with a fresh recording tracer and returns the
/// logical stream as JSONL plus the output labels.
fn traced_conn_jsonl(
    g: &Graph,
    k: usize,
    seed: u64,
    mut cfg: ConnectivityConfig,
) -> (String, Vec<u64>) {
    let tracer = Tracer::recording();
    cfg.trace = tracer.clone();
    let run = Cluster::builder(k)
        .seed(seed)
        .ingest_graph(g)
        .run(Connectivity::with(cfg));
    (to_jsonl(&tracer.events()), run.output.labels)
}

#[test]
fn logical_stream_is_byte_identical_across_backends() {
    use_test_worker_exe();
    let g = generators::planted_components(150, 5, 3, 0x63);
    let sim = traced_conn_jsonl(&g, 3, 11, ConnectivityConfig::default());
    let phys = traced_conn_jsonl(
        &g,
        3,
        11,
        ConnectivityConfig {
            transport: TransportSel::Proc,
            ..ConnectivityConfig::default()
        },
    );
    assert!(!sim.0.is_empty(), "tracing on must record events");
    assert_eq!(sim.1, phys.1, "clean cell: labels");
    assert_eq!(sim.0, phys.0, "clean cell: logical JSONL bytes");
}

#[test]
fn chaos_cell_logical_stream_is_byte_identical_across_backends() {
    // The conformance chaos cell: drops, duplicates and reorders force
    // ack/retransmit waves, each of which re-crosses the real sockets on
    // the process backend — yet the *logical* event stream, sequence
    // numbers included, must not move by one byte.
    use_test_worker_exe();
    let g = generators::gnm(120, 260, 0x62);
    let plan = FaultPlan::new(42)
        .with_drop(0.25)
        .with_dup(0.1)
        .with_reorder(0.2);
    let cfg = ConnectivityConfig {
        faults: Some(plan),
        ..ConnectivityConfig::default()
    };
    let sim = traced_conn_jsonl(&g, 3, 7, cfg.clone());
    let phys = traced_conn_jsonl(
        &g,
        3,
        7,
        ConnectivityConfig {
            transport: TransportSel::Proc,
            ..cfg
        },
    );
    assert!(
        sim.0.contains("\"retransmit\"") && sim.0.contains("\"faults\""),
        "the plan must actually surface fault and retransmit events"
    );
    assert_eq!(sim.1, phys.1, "chaos cell: labels");
    assert_eq!(sim.0, phys.0, "chaos cell: logical JSONL bytes");
}

#[test]
fn tracing_is_invisible_to_outputs_and_stats() {
    // Bit-identity of the run itself, tracing on vs off: the tracer is an
    // observer of charges already made, never a participant.
    let g = generators::gnm(120, 260, 0x62);
    let plan = FaultPlan::new(42).with_drop(0.2).with_crash(1, 6);
    let base = MstConfig {
        faults: Some(plan),
        ..MstConfig::default()
    };
    let cluster = Cluster::builder(3).seed(9).ingest_graph(&g);
    let off = cluster.run(Mst::with(base.clone())).output;
    let tracer = Tracer::recording();
    let on = cluster
        .run(Mst::with(MstConfig {
            trace: tracer.clone(),
            ..base
        }))
        .output;
    assert!(!tracer.events().is_empty(), "tracer was live");
    assert_eq!(off.edges, on.edges, "MST edge set");
    assert_eq!(off.total_weight, on.total_weight, "MST weight");
    assert_eq!(
        format!("{:?}", off.stats),
        format!("{:?}", on.stats),
        "every CommStats field, superstep loads included"
    );
}

/// Pins the exact-tiling invariant: breakdown columns sum to the totals.
fn assert_breakdown_tiles(id: &str, rows: &[kmm::machine::trace::PhaseSummary], stats: &CommStats) {
    assert!(!rows.is_empty(), "{id}: breakdown present");
    let rounds: u64 = rows.iter().map(|r| r.rounds).sum();
    let bits: u64 = rows.iter().map(|r| r.bits).sum();
    let rec: u64 = rows.iter().map(|r| r.recovery_rounds).sum();
    let rtx: u64 = rows.iter().map(|r| r.retransmit_bits).sum();
    assert_eq!(rounds, stats.rounds, "{id}: rounds tile exactly");
    assert_eq!(bits, stats.total_bits, "{id}: bits tile exactly");
    assert_eq!(rec, stats.recovery_rounds, "{id}: recovery rounds tile");
    assert_eq!(rtx, stats.retransmit_bits, "{id}: retransmit bits tile");
}

#[test]
fn phase_breakdown_tiles_commstats_exactly() {
    let g = generators::planted_components(150, 5, 3, 0x63);
    let run = Cluster::builder(3)
        .seed(11)
        .ingest_graph(&g)
        .run(Connectivity::with(ConnectivityConfig {
            trace: Tracer::recording(),
            ..ConnectivityConfig::default()
        }));
    let rows = run.report.phase_breakdown.as_deref().expect("breakdown on");
    assert_breakdown_tiles("conn/planted", rows, &run.output.stats);
    assert!(
        rows.iter().any(|r| r.label == "setup") && rows.iter().any(|r| r.label == "output"),
        "setup and output segments are explicit rows"
    );
}

#[test]
fn faulted_mst_breakdown_tiles_with_rollback_rows() {
    // Crash at superstep 6 forces a phase rollback: the aborted attempt
    // becomes its own row, and the recovery columns still tile exactly.
    let g = generators::randomize_weights(&generators::gnm(120, 260, 0x62), 1000, 0x67);
    let plan = FaultPlan::new(9)
        .with_drop(0.2)
        .with_dup(0.1)
        .with_crash(1, 6);
    let run = Cluster::builder(3)
        .seed(9)
        .ingest_graph(&g)
        .run(Mst::with(MstConfig {
            faults: Some(plan),
            criterion: OutputCriterion::BothEndpoints,
            trace: Tracer::recording(),
            ..MstConfig::default()
        }));
    let rows = run.report.phase_breakdown.as_deref().expect("breakdown on");
    assert!(
        run.output.stats.machine_crashes > 0 && rows.iter().any(|r| r.rolled_back),
        "the crash must surface as a rolled-back row"
    );
    assert!(
        rows.iter().any(|r| r.label == "endpoint_routing"),
        "MST endpoint routing is its own segment row"
    );
    assert_breakdown_tiles("mst/faulted", rows, &run.output.stats);
}

#[test]
fn spanning_forest_breakdown_tiles() {
    let g = generators::barbell(24, 3, 5, 0x65);
    let run = Cluster::builder(3)
        .seed(3)
        .ingest_graph(&g)
        .run(SpanningForest::with(MstConfig {
            trace: Tracer::recording(),
            ..MstConfig::default()
        }));
    let rows = run.report.phase_breakdown.as_deref().expect("breakdown on");
    assert_breakdown_tiles("st/barbell", rows, &run.output.stats);
}

#[test]
fn breakdown_is_absent_when_tracing_is_off() {
    let g = generators::planted_components(60, 3, 2, 0x63);
    let run = Cluster::builder(2)
        .seed(1)
        .ingest_graph(&g)
        .run_default::<Connectivity>();
    assert!(run.report.phase_breakdown.is_none(), "off means None");
}

#[test]
fn jsonl_file_sink_matches_the_in_memory_stream() {
    // The file a `--trace-out` run writes is exactly `to_jsonl` of the
    // in-memory stream — the sink adds nothing, drops nothing.
    let path = std::env::temp_dir().join(format!("kmm-trace-{}.jsonl", std::process::id()));
    let file = std::fs::File::create(&path).expect("temp trace file");
    let tracer = Tracer::to_sink(Box::new(JsonlSink::new(std::io::BufWriter::new(file))));
    let g = generators::planted_components(80, 4, 2, 0x63);
    let run = Cluster::builder(2)
        .seed(5)
        .ingest_graph(&g)
        .run(Connectivity::with(ConnectivityConfig {
            trace: tracer.clone(),
            ..ConnectivityConfig::default()
        }));
    tracer.flush();
    let text = std::fs::read_to_string(&path).expect("trace file readable");
    let _ = std::fs::remove_file(&path);
    assert_eq!(text, to_jsonl(&tracer.events()), "file bytes == stream");

    // The stream round-trips through the parser, the offline breakdown
    // agrees with the session's, and the Chrome export is non-trivial.
    let parsed = parse_jsonl(&text).expect("every line parses");
    assert_eq!(parsed.len(), tracer.events().len());
    assert_eq!(to_jsonl(&parsed), text, "parse/serialize round-trip");
    assert_eq!(
        phase_breakdown(&parsed).len(),
        run.report.phase_breakdown.as_deref().map_or(0, <[_]>::len),
        "offline breakdown matches the session report"
    );
    let chrome = chrome_trace(&parsed);
    assert!(
        chrome.starts_with("{\"displayTimeUnit\"") && chrome.contains("\"traceEvents\""),
        "chrome trace-event JSON shape"
    );
}
