//! Edge-case battery: minimum machine counts, extreme bandwidth, trivial
//! graphs, partial progress, and cost-model plumbing.

use kmm::machine::{Bandwidth, CostModel};
use kmm::prelude::*;

#[test]
fn k_equals_two_works_everywhere() {
    let g = generators::randomize_weights(&generators::random_connected(80, 60, 1), 100, 2);
    let conn = connected_components(&g, 2, 3, &ConnectivityConfig::default());
    assert_eq!(conn.component_count(), 1);
    let mst = minimum_spanning_tree(&g, 2, 3, &MstConfig::default());
    assert_eq!(
        mst.total_weight,
        refalgo::forest_weight(&refalgo::kruskal(&g))
    );
    let st = spanning_forest(&g, 2, 3, &MstConfig::default());
    assert_eq!(st.edges.len(), 79);
    let cut = approx_min_cut(&g, 2, 3, &MinCutConfig::default());
    assert!(cut.estimate >= 1);
}

#[test]
fn one_bit_links_still_terminate_correctly() {
    // Extreme congestion: every message takes its full bit-length in rounds.
    let g = generators::planted_components(40, 2, 2, 5);
    let cfg = ConnectivityConfig {
        bandwidth: Bandwidth::Bits(1),
        ..ConnectivityConfig::default()
    };
    let out = connected_components(&g, 4, 6, &cfg);
    assert_eq!(out.component_count(), 2);
    // Rounds explode (every bit is a round) but stay finite and exact.
    assert!(out.stats.rounds >= out.stats.max_link_bits);
}

#[test]
fn single_vertex_and_tiny_graphs() {
    let g1 = Graph::unweighted(1, []);
    let out = connected_components(&g1, 2, 7, &ConnectivityConfig::default());
    assert_eq!(out.component_count(), 1);
    assert_eq!(out.counted_components, Some(1));

    let g2 = Graph::unweighted(2, [(0, 1)]);
    let out = connected_components(&g2, 2, 8, &ConnectivityConfig::default());
    assert_eq!(out.component_count(), 1);

    let mst = minimum_spanning_tree(&g2, 2, 9, &MstConfig::default());
    assert_eq!(mst.edges.len(), 1);
}

#[test]
fn k_larger_than_n_is_fine() {
    // More machines than vertices: most machines hold nothing.
    let g = generators::cycle(12);
    let out = connected_components(&g, 32, 10, &ConnectivityConfig::default());
    assert_eq!(out.component_count(), 1);
}

#[test]
fn phase_cap_yields_partial_but_sound_labels() {
    // One phase only: labels must still never span true components.
    let g = generators::planted_components(120, 4, 3, 11);
    let cfg = ConnectivityConfig {
        max_phases: Some(1),
        run_output_protocol: false,
        ..ConnectivityConfig::default()
    };
    let out = connected_components(&g, 4, 12, &cfg);
    let truth = refalgo::connected_components(&g);
    let mut rep: std::collections::HashMap<u64, u32> = Default::default();
    for (v, &t) in truth.iter().enumerate() {
        let r = rep.entry(out.labels[v]).or_insert(t);
        assert_eq!(*r, t, "labels must stay within true components");
    }
    // And it cannot have finished: more labels than true components.
    assert!(out.component_count() >= 4);
}

#[test]
fn cost_models_agree_on_outputs_and_order() {
    let g = generators::gnm(600, 1800, 13);
    let mk = |model| ConnectivityConfig {
        cost_model: model,
        ..ConnectivityConfig::default()
    };
    let link = connected_components(&g, 8, 14, &mk(CostModel::PerLink));
    let machine = connected_components(&g, 8, 14, &mk(CostModel::PerMachine));
    assert_eq!(
        link.labels, machine.labels,
        "cost model must not change outputs"
    );
    assert!(
        machine.stats.rounds <= link.stats.rounds,
        "per-machine charging can only be cheaper: {} vs {}",
        machine.stats.rounds,
        link.stats.rounds
    );
}

#[test]
fn huge_weights_do_not_overflow() {
    let edges = [
        (0u32, 1u32, u64::MAX / 4),
        (1, 2, u64::MAX / 4),
        (0, 2, u64::MAX / 2),
    ];
    let g = Graph::from_edges(3, edges);
    let mst = minimum_spanning_tree(&g, 2, 15, &MstConfig::default());
    assert_eq!(mst.edges.len(), 2);
    assert_eq!(mst.total_weight, (u64::MAX / 4) as u128 * 2);
}

#[test]
fn self_verification_of_own_cut_edges() {
    use kmm::algo::verify;
    use rustc_hash::FxHashSet;
    // s == t style degenerate verification questions.
    let g = generators::path(20);
    let v = verify::st_connectivity(&g, 5, 5, 2, 16, &ConnectivityConfig::default());
    assert!(v.holds, "a vertex is connected to itself");
    // Removing all edges disconnects everything.
    let all: FxHashSet<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
    let v = verify::cut_verification(&g, &all, 2, 17, &ConnectivityConfig::default());
    assert!(v.holds);
}

#[test]
fn coin_flip_merging_is_correct_end_to_end() {
    use kmm::algo::engine::MergeStrategy;
    let g = generators::planted_components(250, 3, 5, 18);
    let cfg = ConnectivityConfig {
        merge: MergeStrategy::CoinFlip,
        ..ConnectivityConfig::default()
    };
    let out = connected_components(&g, 4, 19, &cfg);
    assert_eq!(out.component_count(), 3);
    // Coin-flip trees are stars: recorded depths never exceed 1.
    assert!(
        out.drr_depths.iter().all(|&d| d <= 1),
        "{:?}",
        out.drr_depths
    );
}

#[test]
fn spanning_forest_weight_is_at_least_mst_weight() {
    let g = generators::randomize_weights(&generators::gnm(300, 1200, 20), 10_000, 21);
    let st = spanning_forest(&g, 4, 22, &MstConfig::default());
    let mst = minimum_spanning_tree(&g, 4, 22, &MstConfig::default());
    let st_weight: u128 = st.edges.iter().map(|e| e.w as u128).sum();
    assert!(st_weight >= mst.total_weight);
    assert_eq!(st.edges.len(), mst.edges.len());
}
