//! Public-API surface snapshot: a dependency-free pin of every `pub` item
//! across the workspace crates, so PRs that change the API surface show the
//! diff explicitly (in `tests/api_surface.txt`) instead of slipping it past
//! review inside an implementation change.
//!
//! The extraction is deliberately simple text scanning — one line per
//! `pub` item, first signature line only, file-prefixed and sorted. It is
//! deterministic, which is all a snapshot needs. Scanning a file stops at
//! its `#[cfg(test)]` module (by convention the last item in this
//! workspace), so test helpers never leak into the surface.
//!
//! To accept an intentional API change, rerun with
//! `KMM_UPDATE_API_SURFACE=1 cargo test --test api_surface` and commit the
//! rewritten snapshot.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// The source roots that make up the public workspace surface.
const ROOTS: &[&str] = &["src", "crates"];

const SNAPSHOT: &str = "tests/api_surface.txt";

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Crate sources only: skip build output, vendored deps, and
            // per-crate test/bench trees (they are not API surface).
            if ["target", "vendor", "tests", "benches", "examples"].contains(&name.as_ref()) {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Extracts the `pub` item heads of one file (first signature line each),
/// stopping at the conventional trailing `#[cfg(test)]` module.
fn extract_items(rel: &str, text: &str, items: &mut Vec<String>) {
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("#[cfg(test)]") {
            break;
        }
        let is_item = [
            "pub fn ",
            "pub struct ",
            "pub enum ",
            "pub trait ",
            "pub type ",
            "pub const ",
            "pub mod ",
            "pub use ",
            "pub static ",
        ]
        .iter()
        .any(|p| t.starts_with(p));
        if !is_item {
            continue;
        }
        // Normalize: drop an opening-brace/where tail so formatting churn
        // does not count as an API change.
        let head = t
            .split(" where ")
            .next()
            .unwrap()
            .trim_end_matches('{')
            .trim_end();
        items.push(format!("{rel}: {head}"));
    }
}

fn current_surface() -> String {
    let root = repo_root();
    let mut files = Vec::new();
    for r in ROOTS {
        collect_rs_files(&root.join(r), &mut files);
    }
    let mut items = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(&root)
            .unwrap()
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(f).unwrap_or_default();
        extract_items(&rel, &text, &mut items);
    }
    items.sort();
    items.dedup();
    let mut out = String::new();
    for i in &items {
        writeln!(out, "{i}").unwrap();
    }
    out
}

#[test]
fn public_api_surface_matches_snapshot() {
    let got = current_surface();
    let snap_path = repo_root().join(SNAPSHOT);
    if std::env::var("KMM_UPDATE_API_SURFACE").is_ok() {
        fs::write(&snap_path, &got).expect("write snapshot");
        return;
    }
    let want = fs::read_to_string(&snap_path).unwrap_or_default();
    if got == want {
        return;
    }
    let got_set: std::collections::BTreeSet<&str> = got.lines().collect();
    let want_set: std::collections::BTreeSet<&str> = want.lines().collect();
    let added: Vec<&&str> = got_set.difference(&want_set).collect();
    let removed: Vec<&&str> = want_set.difference(&got_set).collect();
    panic!(
        "public API surface changed.\n\n  added ({}):\n{}\n\n  removed ({}):\n{}\n\n\
         If intentional, refresh the pin:\n  KMM_UPDATE_API_SURFACE=1 cargo test --test api_surface\n",
        added.len(),
        added
            .iter()
            .map(|l| format!("    + {l}"))
            .collect::<Vec<_>>()
            .join("\n"),
        removed.len(),
        removed
            .iter()
            .map(|l| format!("    - {l}"))
            .collect::<Vec<_>>()
            .join("\n"),
    );
}

/// The snapshot itself must be present, non-trivial, and contain the
/// session-layer anchors this PR introduced (guards against an empty or
/// truncated pin silently passing).
#[test]
fn snapshot_pin_is_present_and_covers_the_session_layer() {
    let want = fs::read_to_string(repo_root().join(SNAPSHOT)).expect("snapshot committed");
    assert!(
        want.lines().count() > 100,
        "the workspace exposes far more than 100 public items"
    );
    for anchor in [
        "pub struct Cluster",
        "pub struct ClusterBuilder",
        "pub trait Problem",
        "pub struct RunReport",
        "pub fn rep_mst_sharded",
        "pub fn ingest_count",
    ] {
        assert!(
            want.contains(anchor),
            "snapshot must pin the session layer: missing {anchor:?}"
        );
    }
}
