//! Chaos conformance (DESIGN.md §3.10, §5): the scenario matrix replayed
//! under seeded fault plans — message drops, duplicates, reorders, delays
//! and scheduled machine crashes — with every answer pinned **bit-identical**
//! to the fault-free run on the same ingested cluster.
//!
//! The recovery machinery under test: the per-superstep ack/retransmit
//! protocol of `kmachine::bsp` (masks message-level faults and reassembles
//! canonical inboxes) and the engine's phase checkpoints
//! (`kconn::engine::RecoveryPolicy`), which roll a crashed phase back and
//! re-enter it, replaying the exact fault-free trajectory. Fault counters
//! are pinned both ways: active plans must fire and report their masking
//! cost; fault-free runs must report exactly zero.

mod common;

use common::{assert_stats_sane, graph_families, matrix, sub_matrix, SEEDS};
use kmm::machine::fault::FaultPlan;
use kmm::prelude::*;

/// The seeded fault plans of the chaos matrix, parameterized by the cell's
/// machine count so crash events always name real machines — shared with
/// the E22 measurement family, so the conformance suite pins exactly the
/// matrix the benchmark reports.
use kbench::chaos::plans;

/// Fault-free runs must report exactly zero on every fault counter — the
/// new accounting may not perturb clean runs in any way.
fn assert_clean_counters(id: &str, stats: &CommStats) {
    assert_eq!(stats.faults_injected, 0, "{id}: clean run injected faults");
    assert_eq!(stats.retransmit_bits, 0, "{id}: clean run retransmitted");
    assert_eq!(stats.recovery_rounds, 0, "{id}: clean run recovered");
    assert_eq!(stats.machine_crashes, 0, "{id}: clean run crashed");
}

/// A faulted run must report what it survived: injected faults plus a
/// nonzero masking cost, all still within the model-accounting invariants
/// — and the recovery overhead must be exactly separable: subtracting the
/// recovery counters recovers the fault-free run's cost (DESIGN.md §3.10).
fn assert_faulted_counters(id: &str, stats: &CommStats, clean: &CommStats, k: usize) {
    assert!(stats.faults_injected > 0, "{id}: the plan never fired");
    assert!(
        stats.retransmit_bits > 0 || stats.recovery_rounds > 0,
        "{id}: faults fired but no recovery cost was reported"
    );
    assert_eq!(
        stats.rounds - stats.recovery_rounds,
        clean.rounds,
        "{id}: rounds − recovery_rounds must equal the fault-free rounds"
    );
    assert_eq!(
        stats.total_bits - stats.retransmit_bits,
        clean.total_bits,
        "{id}: total_bits − retransmit_bits must equal the fault-free bits"
    );
    assert_stats_sane(id, stats, k);
}

// ---------------------------------------------------------------------
// Headliner 1: connectivity — full matrix × every plan.
// ---------------------------------------------------------------------

#[test]
fn connectivity_is_bit_identical_under_every_fault_plan() {
    for s in matrix() {
        let cluster = s.cluster();
        let baseline = cluster.run(Connectivity::with(s.conn_cfg()));
        assert_clean_counters(&s.id, &baseline.report.stats);
        assert_eq!(
            baseline.report.faults_injected, 0,
            "{}: report mirror",
            s.id
        );
        for (name, plan) in plans(s.k, s.seed) {
            let id = format!("{}/{name}", s.id);
            let faulted = cluster.run(Connectivity::with(ConnectivityConfig {
                faults: Some(plan),
                ..s.conn_cfg()
            }));
            assert_eq!(
                faulted.output.labels, baseline.output.labels,
                "{id}: labels must be bit-identical to the fault-free run"
            );
            assert_eq!(
                faulted.output.counted_components, baseline.output.counted_components,
                "{id}: §2.6 protocol count"
            );
            assert_eq!(
                faulted.output.phases, baseline.output.phases,
                "{id}: phases"
            );
            assert_faulted_counters(&id, &faulted.report.stats, &baseline.report.stats, s.k);
            assert_eq!(
                faulted.report.recovery_rounds, faulted.report.stats.recovery_rounds,
                "{id}: report trailer mirrors the stats"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Headliners 2–4: spanning forest, MST, min cut — sub-matrices × plans.
// The forest pins are the strongest: forest edges are trajectory-
// sensitive, so they catch any divergence in the replayed merge path.
// ---------------------------------------------------------------------

#[test]
fn spanning_forest_is_bit_identical_under_every_fault_plan() {
    for s in sub_matrix(3, 0) {
        let cluster = s.cluster();
        let baseline = cluster.run(SpanningForest::with(s.mst_cfg()));
        assert_clean_counters(&s.id, &baseline.report.stats);
        for (name, plan) in plans(s.k, s.seed) {
            let id = format!("{}/{name}", s.id);
            let faulted = cluster.run(SpanningForest::with(MstConfig {
                faults: Some(plan),
                ..s.mst_cfg()
            }));
            assert_eq!(
                faulted.output.edges, baseline.output.edges,
                "{id}: forest edges must replay the exact trajectory"
            );
            assert_eq!(
                faulted.output.edges_per_machine, baseline.output.edges_per_machine,
                "{id}: per-machine output distribution"
            );
            assert_faulted_counters(&id, &faulted.report.stats, &baseline.report.stats, s.k);
        }
    }
}

#[test]
fn mst_is_bit_identical_under_every_fault_plan() {
    for s in sub_matrix(4, 1) {
        let cluster = s.cluster();
        let baseline = cluster.run(Mst::with(s.mst_cfg()));
        assert_clean_counters(&s.id, &baseline.report.stats);
        for (name, plan) in plans(s.k, s.seed) {
            let id = format!("{}/{name}", s.id);
            let faulted = cluster.run(Mst::with(MstConfig {
                faults: Some(plan),
                ..s.mst_cfg()
            }));
            assert_eq!(
                faulted.output.edges, baseline.output.edges,
                "{id}: MST edges"
            );
            assert_eq!(
                faulted.output.total_weight, baseline.output.total_weight,
                "{id}: MST weight"
            );
            assert_faulted_counters(&id, &faulted.report.stats, &baseline.report.stats, s.k);
        }
    }
}

#[test]
fn mincut_is_bit_identical_under_every_fault_plan() {
    for s in sub_matrix(8, 2) {
        if !refalgo::is_connected(&s.g) {
            continue;
        }
        let cluster = s.cluster();
        let baseline = cluster.run(MinCut::with(s.mincut_cfg()));
        assert_clean_counters(&s.id, &baseline.report.stats);
        for (name, plan) in plans(s.k, s.seed) {
            let id = format!("{}/{name}", s.id);
            let faulted = cluster.run(MinCut::with(MinCutConfig {
                faults: Some(plan),
                ..s.mincut_cfg()
            }));
            assert_eq!(
                faulted.output.estimate, baseline.output.estimate,
                "{id}: min-cut estimate"
            );
            assert_eq!(
                faulted.output.disconnecting_probe, baseline.output.disconnecting_probe,
                "{id}: disconnecting probe"
            );
            assert_faulted_counters(&id, &faulted.report.stats, &baseline.report.stats, s.k);
        }
    }
}

// ---------------------------------------------------------------------
// The dynamic path: update routing, certification and incremental
// re-solves all run under the plan and must match both the fault-free
// dynamic run and a fresh static solve of the mutated graph.
// ---------------------------------------------------------------------

#[test]
fn dynamic_batches_are_bit_identical_under_faults() {
    for &seed in &SEEDS {
        for (fi, (family, g)) in graph_families(seed).into_iter().enumerate().step_by(4) {
            // fi steps 0, 4, 8, …: divide out the stride so the machine
            // count actually sweeps 2, 3, 4, 5 across the sampled cells.
            let k = 2 + (fi / 4) % 4;
            for (name, plan) in plans(k, seed) {
                let id = format!("dyn-chaos/{family}/k{k}/{name}/seed{seed}");
                let conn_faulted = ConnectivityConfig {
                    faults: Some(plan.clone()),
                    ..ConnectivityConfig::default()
                };
                let conn_clean = ConnectivityConfig::default();
                let mut faulted = DynamicCluster::wrap(
                    Cluster::builder(k).seed(seed).ingest_graph(&g),
                    DynConfig {
                        faults: Some(plan.clone()),
                        ..DynConfig::default()
                    },
                );
                let mut clean = DynamicCluster::wrap(
                    Cluster::builder(k).seed(seed).ingest_graph(&g),
                    DynConfig::default(),
                );
                let base_f = faulted.connectivity(&conn_faulted);
                let base_c = clean.connectivity(&conn_clean);
                assert_eq!(
                    base_f.output.labels, base_c.output.labels,
                    "{id}: base solve"
                );
                // One insert + one delete batch touching real edges.
                let mut batch = UpdateBatch::new().insert(0, (g.n() as u32) - 1, 7);
                if let Some(e) = g.edges().first() {
                    batch = batch.delete(e.u, e.v);
                }
                if g.edges()
                    .iter()
                    .any(|e| (e.u, e.v) == (0, (g.n() as u32) - 1))
                {
                    continue; // the insert would collide on this family
                }
                faulted
                    .apply(&batch)
                    .unwrap_or_else(|e| panic!("{id}: {e}"));
                clean.apply(&batch).unwrap_or_else(|e| panic!("{id}: {e}"));
                let after_f = faulted.connectivity(&conn_faulted);
                let after_c = clean.connectivity(&conn_clean);
                assert_eq!(
                    after_f.output.labels, after_c.output.labels,
                    "{id}: labels after the batch"
                );
                assert_eq!(
                    after_f.output.component_count(),
                    after_c.output.component_count(),
                    "{id}: component count after the batch"
                );
                assert_labels_hold(&id, &after_c.output.labels, &g, &batch);
            }
        }
    }
}

/// Update-phase faults must surface on the next solve's report even when
/// the solve itself runs clean: the plan sits on `DynConfig` only, so the
/// routing superstep is the sole faulted one.
#[test]
fn update_routing_faults_are_reported_even_when_the_solve_is_clean() {
    let g = generators::path(120);
    let plan = FaultPlan::new(13).with_drop(0.9);
    let mut dc = DynamicCluster::wrap(
        Cluster::builder(4).seed(3).ingest_graph(&g),
        DynConfig {
            faults: Some(plan),
            ..DynConfig::default()
        },
    );
    let clean_cfg = ConnectivityConfig::default();
    let base = dc.connectivity(&clean_cfg);
    assert_eq!(base.report.faults_injected, 0, "no updates routed yet");
    dc.apply(&UpdateBatch::new().insert(0, 119, 5).delete(3, 4))
        .expect("valid batch");
    let run = dc.connectivity(&clean_cfg);
    // The solve's engine run is clean, but its certification exchange also
    // runs under the DynConfig plan and lands in the solve stats; the
    // routing superstep's faults must be reported *on top* of those.
    assert!(
        run.report.faults_injected > run.output.stats.faults_injected,
        "routing-superstep faults must reach the report ({} !> {})",
        run.report.faults_injected,
        run.output.stats.faults_injected
    );
    assert!(
        run.report.recovery_rounds > 0,
        "dropped update messages cost recovery rounds"
    );
    assert!(
        run.report.update_rounds > 1,
        "the faulted routing superstep costs more than the one clean round"
    );
    // And the routed updates still landed exactly: the insert closed the
    // path into a cycle, the delete cut it — one component either way,
    // which only holds if both staged deltas survived the lossy routing.
    assert_eq!(run.output.component_count(), 1);
    assert_eq!(dc.m(), 119, "both staged deltas must have landed (+1/−1)");
}

/// Oracle check for the mutated graph: rebuild it centrally and compare
/// partitions.
fn assert_labels_hold(id: &str, labels: &[u64], g: &Graph, batch: &UpdateBatch) {
    let mut edges = g.edges().to_vec();
    batch
        .apply_to_edge_list(g.n(), &mut edges)
        .unwrap_or_else(|e| panic!("{id}: {e}"));
    let mutated = Graph::from_dedup_edges(g.n(), edges);
    common::assert_labels_match_reference(id, labels, &mutated);
}

// ---------------------------------------------------------------------
// Crash recovery internals: the checkpoint-restore path must actually be
// exercised (durable shard re-read + recovery accounting).
// ---------------------------------------------------------------------

#[test]
fn crash_recovery_reads_shards_back_from_durable_storage() {
    let g = generators::planted_components(600, 3, 3, 91);
    let cluster = Cluster::builder(6).seed(91).ingest_graph(&g);
    let baseline = cluster.run(Connectivity::default());
    let plan = plans(6, 91)
        .into_iter()
        .find(|(n, _)| *n == "one-crash-per-phase")
        .expect("crash plan exists")
        .1;
    let rebuilds_before = kmm::graph::sharded::rebuild_count();
    let faulted = cluster.run(Connectivity::with(ConnectivityConfig {
        faults: Some(plan),
        ..ConnectivityConfig::default()
    }));
    assert_eq!(faulted.output.labels, baseline.output.labels);
    assert!(
        faulted.report.stats.machine_crashes > 0,
        "the crash schedule must fire on this run"
    );
    assert!(
        kmm::graph::sharded::rebuild_count() > rebuilds_before,
        "every crash must re-read the shard from durable storage"
    );
    assert!(faulted.report.recovery_rounds > 0);
    assert!(
        faulted.report.stats.rounds > baseline.report.stats.rounds,
        "aborted phase attempts and restores must cost rounds"
    );
}

/// Disabling phase checkpoints degrades crashes to message-level faults:
/// still bit-identical (the simulator's reliable layer masks the in-flight
/// loss) but without any shard rebuilds — the ablation that shows which
/// mechanism does what.
#[test]
fn disabling_checkpoints_skips_the_restore_path() {
    use kmm::algo::engine::RecoveryPolicy;
    let g = generators::planted_components(400, 2, 3, 47);
    let cluster = Cluster::builder(4).seed(47).ingest_graph(&g);
    let baseline = cluster.run(Connectivity::default());
    let plan = FaultPlan::new(5).with_crash(1, 4).with_crash(2, 12);
    let rebuilds_before = kmm::graph::sharded::rebuild_count();
    let faulted = cluster.run(Connectivity::with(ConnectivityConfig {
        faults: Some(plan),
        recovery: RecoveryPolicy {
            phase_checkpoints: false,
            ..RecoveryPolicy::default()
        },
        ..ConnectivityConfig::default()
    }));
    assert_eq!(faulted.output.labels, baseline.output.labels);
    assert_eq!(
        kmm::graph::sharded::rebuild_count(),
        rebuilds_before,
        "checkpoints off: no durable restore may run"
    );
    assert!(faulted.report.stats.machine_crashes > 0);
}

// ---------------------------------------------------------------------
// Property tests: random plans (arbitrary rates, random crash schedules
// that always leave ≥ 1 machine alive per superstep) against the oracle
// on small random graphs. Case counts are capped by PROPTEST_CASES.
// ---------------------------------------------------------------------

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Connectivity under a random plan terminates, matches the
        /// union-find oracle, and is bit-identical to its fault-free twin.
        #[test]
        fn connectivity_survives_random_fault_plans(
            seed in 0u64..1000,
            k in 2usize..7,
            drop in 0.0f64..0.45,
            dup in 0.0f64..0.4,
            reorder in 0.0f64..0.9,
            delay in 0.0f64..0.3,
            crashes in prop::collection::vec((0u64..60, 0usize..64), 0..5),
        ) {
            let g = generators::gnm(70, 160, seed ^ 0x9A);
            let mut plan = FaultPlan::new(seed ^ 0xFA)
                .with_drop(drop)
                .with_dup(dup)
                .with_reorder(reorder)
                .with_delay(delay);
            let mut down = std::collections::HashMap::new();
            for &(superstep, m) in &crashes {
                // Crash-stop restarts by the next superstep, so "≥ 1 alive"
                // means: never crash every machine in the same superstep.
                let at = *down.entry(superstep).or_insert(0usize);
                if at + 1 < k {
                    plan = plan.with_crash(m % k, superstep);
                    down.insert(superstep, at + 1);
                }
            }
            let cluster = Cluster::builder(k).seed(seed).ingest_graph(&g);
            let clean = cluster.run(Connectivity::default());
            let faulted = cluster.run(Connectivity::with(ConnectivityConfig {
                faults: Some(plan),
                ..ConnectivityConfig::default()
            }));
            prop_assert_eq!(&faulted.output.labels, &clean.output.labels);
            prop_assert_eq!(
                faulted.output.component_count(),
                refalgo::component_count(&g)
            );
        }

        /// The spanning forest (trajectory-sensitive output) under a
        /// random plan: termination, oracle validity, bit-identity.
        #[test]
        fn spanning_forest_survives_random_fault_plans(
            seed in 0u64..1000,
            k in 2usize..6,
            drop in 0.0f64..0.4,
            delay in 0.0f64..0.25,
            crash_step in 0u64..40,
            crash_machine in 0usize..64,
        ) {
            let g = generators::gnm(60, 110, seed ^ 0x57);
            let plan = FaultPlan::new(seed ^ 0x5F)
                .with_drop(drop)
                .with_delay(delay)
                .with_crash(crash_machine % k, crash_step);
            let cluster = Cluster::builder(k).seed(seed).ingest_graph(&g);
            let clean = cluster.run(SpanningForest::default());
            let faulted = cluster.run(SpanningForest::with(MstConfig {
                faults: Some(plan),
                ..MstConfig::default()
            }));
            prop_assert_eq!(&faulted.output.edges, &clean.output.edges);
            prop_assert!(refalgo::is_spanning_forest(&g, &faulted.output.edges));
            prop_assert_eq!(
                faulted.output.edges.len(),
                g.n() - refalgo::component_count(&g)
            );
        }
    }
}
