//! Supergraph contraction + batch encoding conformance (DESIGN.md §3.11).
//!
//! Contraction is a pure round/bit optimization: after phase 0's Borůvka
//! merges the engine materializes the component supergraph (intra-component
//! edges dropped, multi-edges deduplicated keeping the lightest under the
//! tie-free `(w, u, v)` key) and runs the remaining phases on `⌈log₂ n'⌉`-bit
//! dense ids. The observable outputs are pinned here against the
//! uncontracted engine across the scenario matrix: identical component
//! partitions, identical MST edge sets (the tie-free keys make the MST
//! unique), and spanning forests that remain valid forests inducing the
//! same partition.
//!
//! The varint batch encoding is likewise accounting-only: delivery and
//! trajectory are encoding-independent, and every varint run carries the
//! per-message naive sum as an oracle (`CommStats::naive_bits`) pinned
//! bit-identical to the `Encoding::Naive` run's `total_bits`.

mod common;

use common::{
    assert_labels_match_reference, assert_stats_sane, matrix, same_partition, sub_matrix,
};
use kbench::chaos::plans;
use kmm::prelude::*;

/// The contracted ablation of a scenario's connectivity config.
fn contract_conn(s: &common::Scenario, encoding: Encoding) -> ConnectivityConfig {
    ConnectivityConfig {
        contract: true,
        encoding,
        ..s.conn_cfg()
    }
}

/// The contracted ablation of a scenario's MST/forest config.
fn contract_mst(s: &common::Scenario, encoding: Encoding) -> MstConfig {
    MstConfig {
        contract: true,
        encoding,
        ..s.mst_cfg()
    }
}

// ---------------------------------------------------------------------
// Contract → solve equals solve-uncontracted: the full matrix for
// connectivity, sub-matrices for the edge-output modes.
// ---------------------------------------------------------------------

#[test]
fn contracted_connectivity_matches_uncontracted_on_full_matrix() {
    for s in matrix() {
        let cluster = s.cluster();
        let plain = cluster.run(Connectivity::with(s.conn_cfg())).output;
        let contracted = cluster
            .run(Connectivity::with(contract_conn(&s, Encoding::Naive)))
            .output;
        // Labels are canonicalized to the minimum vertex per component, so
        // they must be *equal*, not merely partition-equivalent.
        assert_eq!(
            contracted.labels, plain.labels,
            "{}: canonical labels must agree",
            s.id
        );
        assert_eq!(
            contracted.component_count(),
            plain.component_count(),
            "{}: component count",
            s.id
        );
        assert_eq!(
            contracted.counted_components, plain.counted_components,
            "{}: §2.6 output protocol count",
            s.id
        );
        assert_labels_match_reference(&s.id, &contracted.labels, &s.g);
        assert_stats_sane(&s.id, &contracted.stats, s.k);
    }
}

#[test]
fn contracted_mst_matches_uncontracted_edge_for_edge() {
    for s in sub_matrix(2, 0) {
        let cluster = s.cluster();
        let plain = cluster.run(Mst::with(s.mst_cfg())).output;
        let contracted = cluster
            .run(Mst::with(contract_mst(&s, Encoding::Naive)))
            .output;
        // Tie-free (w, u, v) keys make the MST unique: the contracted run
        // must reproduce the exact edge set, not just the weight.
        assert_eq!(
            contracted.edges, plain.edges,
            "{}: the unique MST edge set",
            s.id
        );
        assert_eq!(
            contracted.total_weight,
            refalgo::forest_weight(&refalgo::kruskal(&s.g)),
            "{}: Kruskal weight",
            s.id
        );
        assert!(
            refalgo::is_spanning_forest(&s.g, &contracted.edges),
            "{}: output must span",
            s.id
        );
        assert_stats_sane(&s.id, &contracted.stats, s.k);
    }
}

#[test]
fn contracted_spanning_forest_spans_the_same_partition() {
    for s in sub_matrix(3, 1) {
        let cluster = s.cluster();
        let plain = cluster.run(SpanningForest::with(s.mst_cfg())).output;
        let contracted = cluster
            .run(SpanningForest::with(contract_mst(&s, Encoding::Naive)))
            .output;
        // Forest edges are trajectory-dependent, so only the induced
        // structure is pinned: a valid forest with one tree per component.
        assert!(
            refalgo::is_spanning_forest(&s.g, &contracted.edges),
            "{}: contracted forest must span",
            s.id
        );
        assert_eq!(
            contracted.edges.len(),
            plain.edges.len(),
            "{}: forest size = n - #components",
            s.id
        );
        assert_stats_sane(&s.id, &contracted.stats, s.k);
    }
}

#[test]
fn contracted_mincut_estimate_is_unchanged() {
    for s in sub_matrix(9, 2) {
        if !refalgo::is_connected(&s.g) {
            continue;
        }
        let cluster = s.cluster();
        let plain = cluster.run(MinCut::with(s.mincut_cfg())).output;
        let contracted = cluster
            .run(MinCut::with(MinCutConfig {
                contract: true,
                ..s.mincut_cfg()
            }))
            .output;
        // Every probe's connectivity verdict is exact either way, so the
        // disconnecting probe — hence the estimate — must agree.
        assert_eq!(contracted.estimate, plain.estimate, "{}: estimate", s.id);
        assert_eq!(
            contracted.disconnecting_probe, plain.disconnecting_probe,
            "{}: disconnecting probe",
            s.id
        );
        assert_stats_sane(&s.id, &contracted.stats, s.k);
    }
}

#[test]
fn contraction_conforms_on_random_graphs() {
    // Random-graph sweep beyond the named families: gnp/gnm at several
    // densities, pinned against the sequential oracles under contraction.
    for seed in [1u64, 2, 3, 4, 5] {
        for (g, tag) in [
            (generators::gnp(300, 0.01, seed), "gnp-sparse"),
            (generators::gnp(220, 0.05, seed ^ 7), "gnp-mid"),
            (generators::gnm(400, 900, seed ^ 13), "gnm"),
            (
                generators::randomize_weights(&generators::gnm(256, 1024, seed), 1 << 20, seed),
                "gnm-weighted",
            ),
        ] {
            let id = format!("{tag}/seed{seed}");
            let cluster = Cluster::builder(4).seed(seed ^ 0xA5).ingest_graph(&g);
            let conn = cluster
                .run(Connectivity::with(ConnectivityConfig {
                    contract: true,
                    encoding: Encoding::Varint,
                    ..ConnectivityConfig::default()
                }))
                .output;
            assert_eq!(
                conn.component_count(),
                refalgo::component_count(&g),
                "{id}: component count"
            );
            assert_labels_match_reference(&id, &conn.labels, &g);
            let mst = cluster
                .run(Mst::with(MstConfig {
                    contract: true,
                    encoding: Encoding::Varint,
                    ..MstConfig::default()
                }))
                .output;
            assert_eq!(
                mst.total_weight,
                refalgo::forest_weight(&refalgo::kruskal(&g)),
                "{id}: MST weight"
            );
            assert!(
                refalgo::is_spanning_forest(&g, &mst.edges),
                "{id}: MST spans"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Encoding ablation: Varint is accounting-only, with the Naive per-message
// sum kept as an oracle on every run.
// ---------------------------------------------------------------------

#[test]
fn varint_encoding_changes_accounting_only() {
    for contract in [false, true] {
        for s in sub_matrix(2, 1) {
            let id = format!("{}/contract={contract}", s.id);
            let cluster = s.cluster();
            let mk = |encoding| ConnectivityConfig {
                contract,
                encoding,
                ..s.conn_cfg()
            };
            let naive = cluster.run(Connectivity::with(mk(Encoding::Naive))).output;
            let varint = cluster.run(Connectivity::with(mk(Encoding::Varint))).output;
            // Delivery and trajectory are encoding-independent.
            assert_eq!(varint.labels, naive.labels, "{id}: labels");
            assert_eq!(
                varint.counted_components, naive.counted_components,
                "{id}: protocol count"
            );
            assert_eq!(varint.phases, naive.phases, "{id}: phases");
            // The oracle identity: every run accumulates the per-message
            // naive sum in `naive_bits`, and for the Naive encoding that sum
            // *is* the charged total.
            assert_eq!(
                naive.stats.naive_bits, naive.stats.total_bits,
                "{id}: naive run's oracle equals its charge"
            );
            assert_eq!(
                varint.stats.naive_bits, naive.stats.total_bits,
                "{id}: varint run's oracle equals the naive run's charge"
            );
            assert_eq!(
                varint.stats.messages, naive.stats.messages,
                "{id}: message counts"
            );
            assert_stats_sane(&id, &varint.stats, s.k);
        }
    }
}

#[test]
fn varint_compresses_real_workloads() {
    // Not an invariant of the encoding (tiny batches can pay the tag), but
    // on real multi-message workloads the shared-tag delta runs must win.
    let g = generators::random_connected(4000, 9000, 42);
    let cluster = Cluster::builder(8).seed(42).ingest_graph(&g);
    let mk = |contract, encoding| ConnectivityConfig {
        contract,
        encoding,
        ..ConnectivityConfig::default()
    };
    let naive = cluster
        .run(Connectivity::with(mk(false, Encoding::Naive)))
        .output;
    let varint = cluster
        .run(Connectivity::with(mk(false, Encoding::Varint)))
        .output;
    assert!(
        varint.stats.total_bits < naive.stats.total_bits,
        "varint must compress the uncontracted run: {} vs {}",
        varint.stats.total_bits,
        naive.stats.total_bits
    );
    let both = cluster
        .run(Connectivity::with(mk(true, Encoding::Varint)))
        .output;
    assert!(
        both.stats.total_bits < naive.stats.total_bits,
        "contract+varint must beat the naive baseline: {} vs {}",
        both.stats.total_bits,
        naive.stats.total_bits
    );
    assert_eq!(both.labels, naive.labels, "ablations agree on the answer");
}

// ---------------------------------------------------------------------
// Composition with PR 5 fault plans: checkpoints snapshot the supergraph,
// so contracted runs replay bit-identically under chaos too.
// ---------------------------------------------------------------------

#[test]
fn contracted_connectivity_is_bit_identical_under_fault_plans() {
    for s in sub_matrix(3, 2) {
        let cluster = s.cluster();
        let cfg = contract_conn(&s, Encoding::Varint);
        let baseline = cluster.run(Connectivity::with(cfg.clone()));
        assert_eq!(
            baseline.report.stats.faults_injected, 0,
            "{}: clean contracted run injected faults",
            s.id
        );
        for (name, plan) in plans(s.k, s.seed) {
            let id = format!("{}/{name}", s.id);
            let faulted = cluster.run(Connectivity::with(ConnectivityConfig {
                faults: Some(plan.clone()),
                ..cfg.clone()
            }));
            assert_eq!(
                faulted.output.labels, baseline.output.labels,
                "{id}: labels must replay the contracted trajectory"
            );
            assert_eq!(
                faulted.output.phases, baseline.output.phases,
                "{id}: phases"
            );
            assert!(
                faulted.report.stats.faults_injected > 0,
                "{id}: the plan never fired"
            );
            // The PR 5 separability identities hold per encoding: stripping
            // the recovery counters recovers the clean contracted run.
            assert_eq!(
                faulted.report.stats.rounds - faulted.report.stats.recovery_rounds,
                baseline.report.stats.rounds,
                "{id}: rounds separability"
            );
            assert_eq!(
                faulted.report.stats.total_bits - faulted.report.stats.retransmit_bits,
                baseline.report.stats.total_bits,
                "{id}: bits separability"
            );
            // The oracle holds under chaos too: the fault plan's decisions
            // are per (superstep, seq), so the naive-encoded faulted run
            // walks the same trajectory and its charge *is* the varint
            // run's per-message oracle.
            let faulted_naive = cluster.run(Connectivity::with(ConnectivityConfig {
                faults: Some(plan),
                ..contract_conn(&s, Encoding::Naive)
            }));
            assert_eq!(
                faulted.report.stats.naive_bits, faulted_naive.report.stats.total_bits,
                "{id}: naive oracle across encodings under faults"
            );
            assert_stats_sane(&id, &faulted.report.stats, s.k);
        }
    }
}

#[test]
fn contracted_mst_is_bit_identical_under_fault_plans() {
    for s in sub_matrix(6, 0) {
        let cluster = s.cluster();
        let cfg = contract_mst(&s, Encoding::Varint);
        let baseline = cluster.run(Mst::with(cfg.clone()));
        for (name, plan) in plans(s.k, s.seed) {
            let id = format!("{}/{name}", s.id);
            let faulted = cluster.run(Mst::with(MstConfig {
                faults: Some(plan),
                ..cfg.clone()
            }));
            assert_eq!(
                faulted.output.edges, baseline.output.edges,
                "{id}: contracted MST edges under chaos"
            );
            assert_eq!(
                faulted.output.total_weight, baseline.output.total_weight,
                "{id}: weight"
            );
            assert_eq!(
                faulted.report.stats.total_bits - faulted.report.stats.retransmit_bits,
                baseline.report.stats.total_bits,
                "{id}: bits separability"
            );
            assert_stats_sane(&id, &faulted.report.stats, s.k);
        }
    }
}

// ---------------------------------------------------------------------
// The partition view: contraction may not perturb which vertices end up
// together even when labels are trajectory-dependent intermediates.
// ---------------------------------------------------------------------

#[test]
fn contracted_partitions_are_identical_across_all_ablations() {
    for s in sub_matrix(5, 0) {
        let cluster = s.cluster();
        let reference = cluster.run(Connectivity::with(s.conn_cfg())).output;
        for encoding in [Encoding::Naive, Encoding::Varint] {
            let out = cluster
                .run(Connectivity::with(contract_conn(&s, encoding)))
                .output;
            if let Err((u, v)) = same_partition(&reference.labels, &out.labels) {
                panic!(
                    "{}/{encoding:?}: vertices {u} and {v} disagree on co-membership",
                    s.id
                );
            }
        }
    }
}
