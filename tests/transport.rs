//! Transport conformance matrix (DESIGN.md §3.12): the multi-process
//! backend — one OS worker process per machine, superstep windows crossing
//! Unix-domain sockets with the varint batch encoding as the actual wire
//! format — must be observationally identical to the in-process simulator,
//! which stays the accounting oracle.
//!
//! Every cell runs the same seeded problem twice, once per backend, and
//! pins
//!
//! * bit-identical outputs (component labels, MST edge sets and weights,
//!   spanning forests, min-cut estimates), and
//! * identical *logical* [`CommStats`] — rounds, `total_bits`,
//!   `naive_bits`, messages, per-machine send/receive loads — because the
//!   model's cost accounting is derived from the decoded envelopes, never
//!   from how many physical bytes the sockets happened to carry.
//!
//! The matrix covers fault-free runs, PR 5 fault plans (retransmission
//! waves re-cross the real sockets), and the PR 6 contraction + varint
//! knobs. Worker processes killed mid-run map onto the
//! [`CrashEvent`](kmm::machine::fault::CrashEvent) story: the coordinator
//! respawns the worker, replays the in-flight window, and folds the
//! restart into `CommStats::machine_crashes`.
//!
//! The quick cells below always run; the full sweep forks enough processes
//! that it is gated behind `--features proc-tests` (a dedicated CI job).

use std::path::PathBuf;
use std::sync::Once;

use kmm::machine::bsp::Bsp;
use kmm::machine::message::Envelope;
use kmm::machine::network::NetworkConfig;
use kmm::machine::transport::{set_worker_exe, ProcTransport};
use kmm::prelude::*;

/// Points the coordinator at the test build of the `kmm` binary (whose
/// hidden `__transport-worker` subcommand is the worker entry point).
/// Without this, `ProcTransport::processes` would try `current_exe()`,
/// which is the test harness itself.
fn use_test_worker_exe() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| set_worker_exe(PathBuf::from(env!("CARGO_BIN_EXE_kmm"))));
}

/// Pins every *logical* field of [`CommStats`] equal across backends.
/// Physical effects (socket retries, worker respawns) must never leak
/// into these; `machine_crashes` is compared separately because a cell
/// that deliberately kills a worker records the restart on the process
/// backend only.
fn assert_stats_identical(id: &str, sim: &CommStats, phys: &CommStats) {
    assert_eq!(sim.rounds, phys.rounds, "{id}: rounds");
    assert_eq!(sim.supersteps, phys.supersteps, "{id}: supersteps");
    assert_eq!(sim.messages, phys.messages, "{id}: messages");
    assert_eq!(sim.total_bits, phys.total_bits, "{id}: total_bits");
    assert_eq!(sim.naive_bits, phys.naive_bits, "{id}: naive_bits");
    assert_eq!(sim.max_link_bits, phys.max_link_bits, "{id}: max_link_bits");
    assert_eq!(sim.sent_bits, phys.sent_bits, "{id}: per-machine sent_bits");
    assert_eq!(sim.recv_bits, phys.recv_bits, "{id}: per-machine recv_bits");
    assert_eq!(sim.cut_bits, phys.cut_bits, "{id}: cut_bits");
    assert_eq!(
        sim.faults_injected, phys.faults_injected,
        "{id}: faults_injected"
    );
    assert_eq!(
        sim.retransmit_bits, phys.retransmit_bits,
        "{id}: retransmit_bits"
    );
    assert_eq!(
        sim.recovery_rounds, phys.recovery_rounds,
        "{id}: recovery_rounds"
    );
}

/// Runs connectivity on both backends and pins outputs + logical stats.
fn pin_connectivity(id: &str, g: &Graph, k: usize, seed: u64, cfg: ConnectivityConfig) {
    use_test_worker_exe();
    let mut sim_cfg = cfg.clone();
    sim_cfg.transport = TransportSel::Sim;
    let mut proc_cfg = cfg;
    proc_cfg.transport = TransportSel::Proc;
    let cluster = Cluster::builder(k).seed(seed).ingest_graph(g);
    let sim = cluster.run(Connectivity::with(sim_cfg)).output;
    let phys = cluster.run(Connectivity::with(proc_cfg)).output;
    assert_eq!(sim.labels, phys.labels, "{id}: component labels");
    assert_eq!(sim.phases, phys.phases, "{id}: phases");
    assert_eq!(
        sim.counted_components, phys.counted_components,
        "{id}: output-protocol count"
    );
    assert_stats_identical(id, &sim.stats, &phys.stats);
    assert_eq!(
        sim.stats.machine_crashes, phys.stats.machine_crashes,
        "{id}: machine_crashes"
    );
}

/// Runs MST on both backends and pins outputs + logical stats.
fn pin_mst(id: &str, g: &Graph, k: usize, seed: u64, cfg: MstConfig) {
    use_test_worker_exe();
    let mut sim_cfg = cfg.clone();
    sim_cfg.transport = TransportSel::Sim;
    let mut proc_cfg = cfg;
    proc_cfg.transport = TransportSel::Proc;
    let cluster = Cluster::builder(k).seed(seed).ingest_graph(g);
    let sim = cluster.run(Mst::with(sim_cfg)).output;
    let phys = cluster.run(Mst::with(proc_cfg)).output;
    assert_eq!(sim.edges, phys.edges, "{id}: MST edge set");
    assert_eq!(sim.total_weight, phys.total_weight, "{id}: MST weight");
    assert_eq!(sim.phases, phys.phases, "{id}: phases");
    assert_stats_identical(id, &sim.stats, &phys.stats);
    assert_eq!(
        sim.stats.machine_crashes, phys.stats.machine_crashes,
        "{id}: machine_crashes"
    );
}

// ---------------------------------------------------------------------
// Quick cells: always on. Each forks k real worker processes.
// ---------------------------------------------------------------------

#[test]
fn connectivity_is_bit_identical_across_backends() {
    let g = generators::planted_components(150, 5, 3, 0x63);
    pin_connectivity(
        "conn/planted-5/k3",
        &g,
        3,
        11,
        ConnectivityConfig::default(),
    );
}

#[test]
fn mst_is_bit_identical_with_contraction_and_varint() {
    // The required contract + varint cell: the varint batch encoding is
    // simultaneously the logical charging model and the physical wire
    // format, and contraction changes the supergraph the windows carry.
    let g = generators::randomize_weights(&generators::gnm(120, 260, 0x62), 1000, 0x67);
    let cfg = MstConfig {
        contract: true,
        encoding: Encoding::Varint,
        ..MstConfig::default()
    };
    pin_mst("mst/weighted-gnm/contract+varint/k4", &g, 4, 3, cfg);
}

#[test]
fn fault_plan_runs_are_bit_identical_across_backends() {
    // The required fault-plan cell: drops, duplicates and reorders force
    // ack/retransmit waves, each of which re-crosses the physical mesh.
    let g = generators::gnm(120, 260, 0x62);
    let plan = FaultPlan::new(42)
        .with_drop(0.25)
        .with_dup(0.1)
        .with_reorder(0.2);
    let cfg = ConnectivityConfig {
        faults: Some(plan),
        ..ConnectivityConfig::default()
    };
    use_test_worker_exe();
    let mut sim_cfg = cfg.clone();
    sim_cfg.transport = TransportSel::Sim;
    let mut proc_cfg = cfg;
    proc_cfg.transport = TransportSel::Proc;
    let cluster = Cluster::builder(3).seed(7).ingest_graph(&g);
    let sim = cluster.run(Connectivity::with(sim_cfg)).output;
    let phys = cluster.run(Connectivity::with(proc_cfg)).output;
    assert!(
        sim.stats.faults_injected > 0,
        "the plan must actually inject faults"
    );
    assert_eq!(sim.labels, phys.labels, "faulted labels");
    assert_stats_identical("conn/gnm/faulted/k3", &sim.stats, &phys.stats);
}

#[test]
fn min_cut_and_spanning_forest_are_bit_identical() {
    use_test_worker_exe();
    let g = generators::barbell(24, 3, 5, 0x65);
    let cluster = Cluster::builder(3).seed(3).ingest_graph(&g);

    let sim_cut = cluster.run(MinCut::with(MinCutConfig::default())).output;
    let proc_cut = cluster
        .run(MinCut::with(MinCutConfig {
            transport: TransportSel::Proc,
            ..MinCutConfig::default()
        }))
        .output;
    assert_eq!(sim_cut.estimate, proc_cut.estimate, "min-cut estimate");
    assert_eq!(
        sim_cut.disconnecting_probe, proc_cut.disconnecting_probe,
        "disconnecting probe"
    );
    assert_eq!(sim_cut.probes, proc_cut.probes, "probe count");
    assert_stats_identical("mincut/barbell/k3", &sim_cut.stats, &proc_cut.stats);

    let sim_st = cluster
        .run(SpanningForest::with(MstConfig::default()))
        .output;
    let proc_st = cluster
        .run(SpanningForest::with(MstConfig {
            transport: TransportSel::Proc,
            ..MstConfig::default()
        }))
        .output;
    assert_eq!(sim_st.edges, proc_st.edges, "spanning forest edges");
    assert_stats_identical("st/barbell/k3", &sim_st.stats, &proc_st.stats);
}

#[test]
fn session_builder_selects_the_proc_backend() {
    // `ClusterBuilder::transport` threads the selection through
    // `EngineConfig` defaults, so `run_default` exercises the same path
    // the CLI's `--transport proc` takes.
    use_test_worker_exe();
    let g = generators::planted_components(120, 2, 4, 0x63);
    let sim = Cluster::builder(4)
        .seed(5)
        .ingest_graph(&g)
        .run_default::<Connectivity>();
    let phys = Cluster::builder(4)
        .seed(5)
        .transport(TransportSel::Proc)
        .ingest_graph(&g)
        .run_default::<Connectivity>();
    assert_eq!(sim.output.labels, phys.output.labels, "builder labels");
    assert_stats_identical(
        "builder/planted-2/k4",
        &sim.report.stats,
        &phys.report.stats,
    );
}

// ---------------------------------------------------------------------
// Worker crash: kill -9 mid-run maps onto CrashEvent recovery.
// ---------------------------------------------------------------------

/// Seeded superstep batch of `u64` payloads (mirrors the kmachine-side
/// thread-mode conformance cells).
fn batch(seed: u64, k: usize, step: u64, len: u64) -> Vec<Envelope<u64>> {
    let prf = krand::prf::Prf::new(seed);
    (0..len)
        .map(|i| {
            let src = prf.eval_mod(10, step * 1_000 + i, k as u64) as usize;
            let dst = prf.eval_mod(11, step * 1_000 + i, k as u64) as usize;
            Envelope::new(src, dst, prf.eval(12, step * 1_000 + i))
        })
        .collect()
}

#[test]
fn killed_worker_is_respawned_and_counted_as_a_machine_crash() {
    use_test_worker_exe();
    let k = 3;

    // Reference run: pure simulator, no transport, no crashes.
    let mut oracle: Bsp<u64> = Bsp::new(NetworkConfig::new(k, Bandwidth::Bits(32), 256));
    for step in 0..4u64 {
        oracle.superstep(batch(9, k, step, 20));
    }
    let oracle_inboxes: Vec<Vec<u64>> = (0..k)
        .map(|m| {
            oracle
                .take_inbox(m)
                .into_iter()
                .map(|e| e.payload)
                .collect()
        })
        .collect();
    let oracle_stats = oracle.into_stats();

    // Process run: SIGKILL one worker between supersteps. The coordinator
    // must detect the death, respawn the worker, replay the window, and
    // the run must finish with bit-identical inboxes and logical stats.
    let transport = ProcTransport::processes(k).expect("spawn worker processes");
    let victim = transport.worker_pids()[1];
    let mut bsp: Bsp<u64> = Bsp::new(NetworkConfig::new(k, Bandwidth::Bits(32), 256));
    bsp.set_transport(Box::new(transport));
    for step in 0..4u64 {
        if step == 2 {
            let killed = std::process::Command::new("kill")
                .args(["-9", &victim.to_string()])
                .status()
                .expect("run kill");
            assert!(killed.success(), "SIGKILL the victim worker");
            // Wait for the worker to actually die so superstep 2's window
            // deterministically hits the dead mesh.
            while std::path::Path::new(&format!("/proc/{victim}/status")).exists()
                && std::fs::read_to_string(format!("/proc/{victim}/stat"))
                    .is_ok_and(|s| !s.contains(") Z "))
            {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        bsp.superstep(batch(9, k, step, 20));
    }
    let inboxes: Vec<Vec<u64>> = (0..k)
        .map(|m| bsp.take_inbox(m).into_iter().map(|e| e.payload).collect())
        .collect();
    let stats = bsp.into_stats();

    assert_eq!(oracle_inboxes, inboxes, "inboxes survive the worker crash");
    assert_stats_identical("crash/k3", &oracle_stats, &stats);
    assert_eq!(oracle_stats.machine_crashes, 0);
    assert!(
        stats.machine_crashes >= 1,
        "the respawn must be folded into machine_crashes, got {}",
        stats.machine_crashes
    );
}

// ---------------------------------------------------------------------
// Satellite: teardown. A panicking test must leak no worker processes.
// ---------------------------------------------------------------------

#[test]
fn panicking_owner_leaves_no_worker_processes_behind() {
    use_test_worker_exe();
    let transport = ProcTransport::processes(4).expect("spawn worker processes");
    let pids = transport.worker_pids();
    assert_eq!(pids.len(), 4, "one worker per machine");
    for &pid in &pids {
        assert!(
            std::path::Path::new(&format!("/proc/{pid}")).exists(),
            "worker {pid} must be alive while the transport is"
        );
    }
    // Panic while the transport is live: unwinding must run its Drop,
    // which reaps every child (no orphans, no zombies).
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let _held = transport;
        panic!("deliberate test panic");
    }));
    assert!(result.is_err(), "the closure must have panicked");
    // Reaped children disappear from /proc entirely (a zombie would still
    // have an entry). Allow a brief grace period for the kernel.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    loop {
        let leaked: Vec<u32> = pids
            .iter()
            .copied()
            .filter(|pid| std::path::Path::new(&format!("/proc/{pid}")).exists())
            .collect();
        if leaked.is_empty() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "worker pids leaked past the panic: {leaked:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------------
// Full sweep: gated behind `--features proc-tests` (dedicated CI job).
// ---------------------------------------------------------------------

#[cfg(feature = "proc-tests")]
mod full_matrix {
    use super::*;

    fn families(seed: u64) -> Vec<(&'static str, Graph)> {
        vec![
            ("path", generators::path(64)),
            ("gnm", generators::gnm(120, 260, seed ^ 0x62)),
            (
                "planted-5",
                generators::planted_components(150, 5, 3, seed ^ 0x64),
            ),
            (
                "weighted-gnm",
                generators::randomize_weights(
                    &generators::gnm(100, 220, seed ^ 0x66),
                    1000,
                    seed ^ 0x67,
                ),
            ),
        ]
    }

    #[test]
    fn connectivity_full_matrix() {
        for (family, g) in families(3) {
            for k in [2usize, 5] {
                for encoding in [Encoding::Naive, Encoding::Varint] {
                    let cfg = ConnectivityConfig {
                        encoding,
                        ..ConnectivityConfig::default()
                    };
                    let id = format!("conn/{family}/k{k}/{encoding:?}");
                    pin_connectivity(&id, &g, k, 3, cfg);
                }
            }
        }
    }

    #[test]
    fn connectivity_contract_matrix() {
        for (family, g) in families(11) {
            for contract in [false, true] {
                let cfg = ConnectivityConfig {
                    contract,
                    encoding: Encoding::Varint,
                    ..ConnectivityConfig::default()
                };
                let id = format!("conn/{family}/k4/contract={contract}/varint");
                pin_connectivity(&id, &g, 4, 11, cfg);
            }
        }
    }

    #[test]
    fn mst_full_matrix() {
        for (family, g) in families(7) {
            for contract in [false, true] {
                for encoding in [Encoding::Naive, Encoding::Varint] {
                    let cfg = MstConfig {
                        contract,
                        encoding,
                        ..MstConfig::default()
                    };
                    let id = format!("mst/{family}/k3/contract={contract}/{encoding:?}");
                    pin_mst(&id, &g, 3, 7, cfg);
                }
            }
        }
    }

    #[test]
    fn faulted_matrix_with_both_encodings() {
        let g = generators::gnm(120, 260, 0x62);
        for encoding in [Encoding::Naive, Encoding::Varint] {
            for (label, plan) in [
                ("drop", FaultPlan::new(13).with_drop(0.4)),
                (
                    "mixed",
                    FaultPlan::new(29)
                        .with_drop(0.2)
                        .with_dup(0.15)
                        .with_reorder(0.25),
                ),
                (
                    "crashes",
                    FaultPlan::new(31).with_crash(1, 40).with_crash(2, 90),
                ),
            ] {
                let cfg = ConnectivityConfig {
                    faults: Some(plan),
                    encoding,
                    ..ConnectivityConfig::default()
                };
                let id = format!("conn/gnm/fault={label}/{encoding:?}");
                pin_connectivity(&id, &g, 4, 13, cfg);
            }
            let mst_cfg = MstConfig {
                faults: Some(FaultPlan::new(17).with_drop(0.3).with_dup(0.1)),
                encoding,
                ..MstConfig::default()
            };
            let g2 = generators::randomize_weights(&generators::gnm(100, 220, 0x66), 1000, 0x67);
            pin_mst(
                &format!("mst/weighted-gnm/faulted/{encoding:?}"),
                &g2,
                3,
                17,
                mst_cfg,
            );
        }
    }

    #[test]
    fn min_cut_full_matrix() {
        use_test_worker_exe();
        for (family, g) in [
            ("barbell", generators::barbell(24, 3, 5, 0x65)),
            ("cycle", generators::cycle(65)),
        ] {
            for k in [2usize, 4] {
                let cluster = Cluster::builder(k).seed(11).ingest_graph(&g);
                let sim = cluster.run(MinCut::with(MinCutConfig::default())).output;
                let phys = cluster
                    .run(MinCut::with(MinCutConfig {
                        transport: TransportSel::Proc,
                        ..MinCutConfig::default()
                    }))
                    .output;
                let id = format!("mincut/{family}/k{k}");
                assert_eq!(sim.estimate, phys.estimate, "{id}: estimate");
                assert_eq!(sim.probes, phys.probes, "{id}: probes");
                assert_stats_identical(&id, &sim.stats, &phys.stats);
            }
        }
    }
}
