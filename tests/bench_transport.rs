//! CI pin for the transport backend family (DESIGN.md §4, E24): on the
//! E20 streamed rung, the multi-process backend must return the simulator
//! baseline bit-for-bit with identical logical accounting — so the honest
//! comparison is wall-clock and physical wire bytes, both captured in
//! `results/BENCH_PR7.json`. Lives in the repo-root test suite (not
//! kbench's own) because the worker binary is only reachable here, via
//! `CARGO_BIN_EXE_kmm`.

use std::path::PathBuf;

use kbench::experiments::{records_to_json, ExperimentRecord};
use kbench::large::family;
use kbench::transport::{measure, measure_wire};
use kmm::machine::transport::set_worker_exe;

#[test]
fn transport_backends_agree_on_the_e20_rung_and_snapshot_the_costs() {
    set_worker_exe(PathBuf::from(env!("CARGO_BIN_EXE_kmm")));
    let mut records: Vec<ExperimentRecord> = Vec::new();

    // ---- E24a: the connectivity headliner, sim vs proc, E20 rung. ----
    let s = &family(true)[0]; // n = 50_000, k = 16
    let ms = measure(&s.cluster());
    assert_eq!(ms.len(), 2);
    assert_eq!(ms[0].backend, "sim");
    assert_eq!(ms[1].backend, "proc");
    for m in &ms {
        assert!(m.identical, "{}/{}: answers diverged", s.id, m.backend);
        records.push(m.record("BENCH_PR7", s));
    }
    // The logical ledger is backend-independent by construction; pin it.
    assert_eq!(ms[0].rounds, ms[1].rounds, "rounds must not see the wire");
    assert_eq!(ms[0].total_bits, ms[1].total_bits, "total_bits");
    assert_eq!(ms[0].naive_bits, ms[1].naive_bits, "naive_bits");
    assert_eq!(ms[0].phases, ms[1].phases, "phases");

    // ---- E24b: physical wire accounting on a real process mesh. ----
    let wire = measure_wire(17, 8, 12, 200, true);
    assert!(wire.payload_bytes > 0, "bytes must cross the sockets");
    assert_eq!(
        wire.windows, wire.attempts,
        "no worker died, so every window succeeds first try"
    );
    records.push(wire.record("BENCH_PR7", "wire/proc/k8", 8));
    // The same seeded workload on the thread mesh moves the same bytes:
    // the wire format is deterministic in the traffic, not the backend.
    let thread_wire = measure_wire(17, 8, 12, 200, false);
    assert_eq!(wire.payload_bytes, thread_wire.payload_bytes);
    assert_eq!(wire.logical_bits, thread_wire.logical_bits);
    records.push(thread_wire.record("BENCH_PR7", "wire/threads/k8", 8));

    // The snapshot lands in the repo-root results/ directory alongside the
    // earlier PR snapshots.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results");
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    let out = dir.join("BENCH_PR7.json");
    std::fs::write(&out, records_to_json(&records))
        .unwrap_or_else(|e| panic!("write {}: {e}", out.display()));
}
